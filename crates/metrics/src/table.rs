//! Plain-text table rendering shared by every figure binary.

use std::fmt::Write as _;

/// A simple aligned text table, used by the `fig*` binaries to print the
/// same rows/series the paper's figures report.
///
/// # Example
///
/// ```
/// use netpack_metrics::TextTable;
/// let mut t = TextTable::new(vec!["placer", "jct"]);
/// t.row(vec!["NetPack".to_string(), "1.00".to_string()]);
/// t.row(vec!["GB".to_string(), "1.45".to_string()]);
/// let rendered = t.render();
/// assert!(rendered.contains("NetPack"));
/// assert!(rendered.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Append a row of formatted floats (4 significant decimals) after a
    /// leading label.
    pub fn row_f64(&mut self, label: impl Into<String>, values: &[f64]) -> &mut Self {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.4}")));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (RFC-4180 quoting for cells containing commas,
    /// quotes, or newlines), for downstream plotting tools.
    ///
    /// # Example
    ///
    /// ```
    /// use netpack_metrics::TextTable;
    /// let mut t = TextTable::new(vec!["a", "b"]);
    /// t.row(vec!["1".into(), "x,y".into()]);
    /// assert_eq!(t.to_csv(), "a,b\n1,\"x,y\"\n");
    /// ```
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Write the CSV rendering to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from directory creation or the write.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Render to an aligned string with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "bb"]);
        t.row(vec!["xxxx".into(), "y".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header and row share column positions.
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn row_f64_formats_values() {
        let mut t = TextTable::new(vec!["label", "v1", "v2"]);
        t.row_f64("x", &[1.0, 0.25]);
        let r = t.render();
        assert!(r.contains("1.0000"));
        assert!(r.contains("0.2500"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = TextTable::new(vec!["k", "v"]);
        t.row(vec!["plain".into(), "with \"quote\"".into()]);
        t.row(vec!["multi\nline".into(), "x".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with \"\"quote\"\"\""));
        assert!(csv.contains("\"multi\nline\""));
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("netpack-metrics-test");
        let path = dir.join("out.csv");
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), t.to_csv());
        let _ = std::fs::remove_dir_all(dir);
    }
}
