//! Summary statistics for repeated-experiment reporting.

/// Mean / standard deviation / percentile summary of a sample.
///
/// The paper repeats each JCT/DE experiment ten times and plots the mean
/// with a standard-deviation error bar; `Summary` is that aggregation.
///
/// # Example
///
/// ```
/// use netpack_metrics::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarize a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a non-finite value.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "sample contains non-finite values"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            n,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4} (n={})", self.mean, self.std, self.n)
    }
}

/// Linear-interpolation percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Normalize `values` so that `values[reference]` becomes 1.0, as the paper
/// does when plotting JCT relative to NetPack.
///
/// # Panics
///
/// Panics if `reference` is out of range or the reference value is zero.
///
/// # Example
///
/// ```
/// use netpack_metrics::normalize_to;
/// let v = normalize_to(&[2.0, 4.0, 1.0], 0);
/// assert_eq!(v, vec![1.0, 2.0, 0.5]);
/// ```
pub fn normalize_to(values: &[f64], reference: usize) -> Vec<f64> {
    let base = values[reference];
    assert!(base != 0.0, "cannot normalize to a zero reference");
    values.iter().map(|v| v / base).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample_has_zero_std() {
        let s = Summary::of(&[3.0, 3.0, 3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p50, 3.0);
    }

    #[test]
    fn summary_std_matches_hand_computation() {
        // Sample {1, 5}: mean 3, sample variance (4+4)/1 = 8.
        let s = Summary::of(&[1.0, 5.0]);
        assert!((s.std - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::of(&[0.0, 10.0]);
        assert_eq!(s.p50, 5.0);
        assert!((s.p95 - 9.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_sample_panics() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Summary::of(&[1.0]).to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "zero reference")]
    fn normalize_to_zero_panics() {
        let _ = normalize_to(&[0.0, 1.0], 0);
    }
}
