//! Least-squares linear regression for the Fig. 6 simulator validation.

/// Result of an ordinary-least-squares fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Pearson correlation coefficient `r` (the paper reports 98% for its
    /// simulator-vs-testbed JCT fit).
    pub r: f64,
}

impl LinearFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Coefficient of determination `r²`.
    pub fn r_squared(&self) -> f64 {
        self.r * self.r
    }
}

/// Fit `y = a*x + b` by least squares over paired samples.
///
/// Returns `None` when fewer than two points are given or when `x` has zero
/// variance (a vertical line has no OLS solution).
///
/// # Example
///
/// ```
/// use netpack_metrics::linear_fit;
/// let x = [1.0, 2.0, 3.0];
/// let y = [2.0, 4.0, 6.0];
/// let fit = linear_fit(&x, &y).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.r - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r = if syy == 0.0 {
        // y constant: perfectly predicted by the (horizontal) fit.
        1.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    };
    Some(LinearFit {
        slope,
        intercept,
        r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_noisy_line_with_high_r() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 3.0 * v + 1.0 + if (v as usize).is_multiple_of(2) { 0.5 } else { -0.5 })
            .collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.01);
        assert!((fit.intercept - 1.0).abs() < 0.5);
        assert!(fit.r > 0.999);
        assert!(fit.r_squared() > 0.998);
    }

    #[test]
    fn anti_correlated_data_has_negative_r() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0, 0.0];
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(linear_fit(&[1.0], &[1.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn constant_y_is_a_perfect_horizontal_fit() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.predict(10.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = linear_fit(&[1.0], &[1.0, 2.0]);
    }
}
