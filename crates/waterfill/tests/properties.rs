//! Property-based tests for the water-filling estimator's invariants.

use netpack_model::Placement;
use netpack_topology::{Cluster, ClusterSpec, JobId, LinkId, RackId, ServerId};
use netpack_waterfill::{estimate, IncrementalEstimator, PlacedJob, SteadyState};
use proptest::prelude::*;

/// Exact (`==` on floats) comparison of a warm incremental state against a
/// from-scratch solve over `jobs` — the bit-identity contract.
fn assert_bitwise_match(
    cluster: &Cluster,
    inc: &SteadyState,
    scratch: &SteadyState,
    jobs: &[PlacedJob],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(inc.num_jobs(), scratch.num_jobs());
    for job in jobs {
        prop_assert_eq!(
            inc.job_rate_gbps(job.id()),
            scratch.job_rate_gbps(job.id()),
            "rate diverged for {}",
            job.id()
        );
        prop_assert_eq!(inc.job_shards(job.id()), scratch.job_shards(job.id()));
    }
    for l in 0..cluster.num_links() {
        let link = LinkId::from_index(l, cluster);
        prop_assert_eq!(
            inc.link_residual_gbps(link, cluster),
            scratch.link_residual_gbps(link, cluster)
        );
        prop_assert_eq!(inc.link_flows(link, cluster), scratch.link_flows(link, cluster));
    }
    for r in 0..cluster.num_racks() {
        prop_assert_eq!(
            inc.pat_residual_gbps(RackId(r)),
            scratch.pat_residual_gbps(RackId(r))
        );
    }
    Ok(())
}

/// Generate a random small cluster spec.
fn arb_cluster() -> impl Strategy<Value = Cluster> {
    (1usize..4, 2usize..6, 1usize..5, 0u32..3, 1u32..5).prop_map(
        |(racks, spr, gps, pat_scale, oversub)| {
            Cluster::new(ClusterSpec {
                racks,
                servers_per_rack: spr,
                gpus_per_server: gps,
                server_link_gbps: 100.0,
                pat_gbps: 50.0 * pat_scale as f64,
                oversubscription: oversub as f64,
                rtt_us: 50.0,
                racks_per_pod: None,
            })
        },
    )
}

/// Generate random placements onto a given cluster (may be local or
/// distributed, INA on or off).
fn arb_jobs(cluster: &Cluster) -> impl Strategy<Value = Vec<PlacedJob>> {
    let ns = cluster.num_servers();
    let cluster = cluster.clone();
    let job = (
        proptest::collection::btree_map(0..ns, 1usize..4, 1..4.min(ns + 1)),
        0..ns,
        any::<bool>(),
    );
    proptest::collection::vec(job, 1..8).prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (workers, ps, ina))| {
                let workers: Vec<(ServerId, usize)> =
                    workers.into_iter().map(|(s, w)| (ServerId(s), w)).collect();
                let mut p = Placement::new(workers, Some(ServerId(ps)));
                p.set_ina_enabled(ina);
                PlacedJob::new(JobId(i as u64), &cluster, &p)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Residual bandwidth and PAT never go negative, and every job gets a
    /// finite non-negative rate (or infinite for local jobs).
    #[test]
    fn residuals_and_rates_are_well_formed(
        (cluster, jobs) in arb_cluster().prop_flat_map(|c| {
            let jobs = arb_jobs(&c);
            (Just(c), jobs)
        })
    ) {
        let state = estimate(&cluster, &jobs);
        for l in 0..cluster.num_links() {
            let link = LinkId::from_index(l, &cluster);
            let res = state.link_residual_gbps(link, &cluster);
            prop_assert!(res >= 0.0, "negative residual {res} on {link}");
            prop_assert!(res <= link.capacity_gbps(&cluster) + 1e-6);
        }
        for r in 0..cluster.num_racks() {
            let res = state.pat_residual_gbps(RackId(r));
            prop_assert!(res >= 0.0);
            prop_assert!(res <= cluster.spec().pat_gbps + 1e-6);
        }
        for job in &jobs {
            let rate = state.job_rate_gbps(job.id()).expect("rate for every job");
            if job.hierarchy().is_none() {
                prop_assert!(rate.is_infinite());
            } else {
                prop_assert!(rate.is_finite() && rate >= 0.0);
            }
        }
    }

    /// Max-min certificate: every network job crosses at least one
    /// saturated link in the converged state (otherwise its rate could
    /// still grow, contradicting max-min fairness).
    #[test]
    fn every_network_job_is_bottlenecked(
        (cluster, jobs) in arb_cluster().prop_flat_map(|c| {
            let jobs = arb_jobs(&c);
            (Just(c), jobs)
        })
    ) {
        let state = estimate(&cluster, &jobs);
        for job in &jobs {
            if let Some(h) = job.hierarchy() {
                let flows = h.link_flows(|r| state.rack_aggregating(r));
                let bottlenecked = flows.iter().any(|&(l, f)| {
                    f > 0 && state.link_residual_gbps(l, &cluster) <= 1e-6
                });
                prop_assert!(bottlenecked, "job {} has slack everywhere", job.id());
            }
        }
    }

    /// A job running alone gets at least the rate it gets in any crowd
    /// (competitors only consume bandwidth and PAT). Note that *pairwise*
    /// monotonicity does not hold for max-min fairness: adding a job can
    /// freeze one competitor earlier and thereby raise a third job's share.
    #[test]
    fn solo_rate_upper_bounds_shared_rate(
        (cluster, jobs) in arb_cluster().prop_flat_map(|c| {
            let jobs = arb_jobs(&c);
            (Just(c), jobs)
        })
    ) {
        let shared = estimate(&cluster, &jobs);
        for job in &jobs {
            let solo = estimate(&cluster, std::slice::from_ref(job));
            let rs = shared.job_rate_gbps(job.id()).unwrap();
            let ra = solo.job_rate_gbps(job.id()).unwrap();
            if ra.is_finite() {
                prop_assert!(rs <= ra + 1e-6, "job {} shared {rs} > solo {ra}", job.id());
            }
        }
    }

    /// The incremental estimator is *bit-identical* to a from-scratch
    /// solve after every push, at every prefix of the job list — the
    /// correctness anchor of the placement-time fast path. Exact `==` on
    /// floats is deliberate: the incremental path must replay the very
    /// same component solves, not merely approximate them.
    #[test]
    fn incremental_push_matches_from_scratch_estimate(
        (cluster, jobs) in arb_cluster().prop_flat_map(|c| {
            let jobs = arb_jobs(&c);
            (Just(c), jobs)
        })
    ) {
        let mut inc = IncrementalEstimator::new(&cluster, &[]);
        for k in 1..=jobs.len() {
            inc.push(&cluster, jobs[k - 1].clone());
            let scratch = estimate(&cluster, &jobs[..k]);
            for job in &jobs[..k] {
                prop_assert_eq!(
                    inc.state().job_rate_gbps(job.id()),
                    scratch.job_rate_gbps(job.id()),
                    "rate diverged for {} after {} pushes", job.id(), k
                );
                prop_assert_eq!(
                    inc.state().job_shards(job.id()),
                    scratch.job_shards(job.id())
                );
            }
            for l in 0..cluster.num_links() {
                let link = LinkId::from_index(l, &cluster);
                prop_assert_eq!(
                    inc.state().link_residual_gbps(link, &cluster),
                    scratch.link_residual_gbps(link, &cluster)
                );
                prop_assert_eq!(
                    inc.state().link_flows(link, &cluster),
                    scratch.link_flows(link, &cluster)
                );
            }
            for r in 0..cluster.num_racks() {
                prop_assert_eq!(
                    inc.state().pat_residual_gbps(RackId(r)),
                    scratch.pat_residual_gbps(RackId(r))
                );
            }
        }
        // The cache never does more water-filling work than from-scratch
        // solving at every prefix would (and usually does much less).
        let scratch_work: u64 = (1..=jobs.len() as u64).sum();
        prop_assert!(inc.stats().jobs_resolved <= scratch_work);
    }

    /// Interleaved add/remove sequences keep the warm estimator
    /// bit-identical to a from-scratch solve over the surviving jobs —
    /// the contract the simulator's event loop relies on, where arrivals
    /// and completions alternate in arbitrary order. The op stream is
    /// driven by random words: even words push the next unseen job (when
    /// any remain), odd words remove a random live one.
    #[test]
    fn incremental_interleaved_ops_match_from_scratch(
        ((cluster, jobs), ops) in arb_cluster().prop_flat_map(|c| {
            let jobs = arb_jobs(&c);
            (Just(c), jobs)
        }).prop_flat_map(|(c, jobs)| {
            let n = jobs.len();
            let ops = proptest::collection::vec(any::<u32>(), 2 * n);
            (Just((c, jobs)), ops)
        })
    ) {
        let mut inc = IncrementalEstimator::new(&cluster, &[]);
        let mut live: Vec<PlacedJob> = Vec::new();
        let mut next = 0usize;
        for &word in &ops {
            let push = word % 2 == 0 && next < jobs.len();
            if push {
                let job = jobs[next].clone();
                next += 1;
                live.push(job.clone());
                inc.push(&cluster, job);
            } else if !live.is_empty() {
                let victim = (word as usize / 2) % live.len();
                let id = live.remove(victim).id();
                prop_assert!(inc.remove(&cluster, id));
            } else if next < jobs.len() {
                // Nothing to remove yet: push instead so the op is not wasted.
                let job = jobs[next].clone();
                next += 1;
                live.push(job.clone());
                inc.push(&cluster, job);
            } else {
                continue;
            }
            let scratch = estimate(&cluster, &live);
            assert_bitwise_match(&cluster, inc.state(), &scratch, &live)?;
        }
    }

    /// Scale invariance: doubling all capacities (links and PAT) doubles
    /// every finite steady rate.
    #[test]
    fn rates_scale_linearly_with_capacity(
        (spec_seed, raw_jobs) in (1usize..3, 2usize..5).prop_flat_map(|(racks, spr)| {
            let spec = ClusterSpec {
                racks,
                servers_per_rack: spr,
                gpus_per_server: 4,
                server_link_gbps: 100.0,
                pat_gbps: 75.0,
                oversubscription: 2.0,
                rtt_us: 50.0,
                racks_per_pod: None,
            };
            let c = Cluster::new(spec.clone());
            let jobs = arb_jobs(&c);
            (Just(spec), jobs)
        })
    ) {
        let c1 = Cluster::new(spec_seed.clone());
        let c2 = Cluster::new(ClusterSpec {
            server_link_gbps: spec_seed.server_link_gbps * 2.0,
            pat_gbps: spec_seed.pat_gbps * 2.0,
            ..spec_seed
        });
        // Placements reference server ids valid in both clusters.
        let s1 = estimate(&c1, &raw_jobs);
        let s2 = estimate(&c2, &raw_jobs);
        for job in &raw_jobs {
            let r1 = s1.job_rate_gbps(job.id()).unwrap();
            let r2 = s2.job_rate_gbps(job.id()).unwrap();
            if r1.is_finite() {
                prop_assert!((r2 - 2.0 * r1).abs() < 1e-5, "{r1} vs {r2}");
            }
        }
    }
}
