#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Steady-state estimation for statistical INA — the paper's Algorithm 1.
//!
//! In statistical INA the network allocates itself: jobs run endpoint
//! congestion control, contend for link bandwidth *and* switch memory, and
//! converge to a max-min fair steady state the controller never sees. To
//! place jobs well, NetPack must therefore *estimate* that steady state.
//!
//! Classic water-filling estimates bandwidth sharing only. The twist here
//! (§4.2) is that INA couples two resources: switch memory aggregates
//! traffic and thereby *reduces* bandwidth consumption. The paper resolves
//! the coupling through the PAT abstraction — switch memory expressed as
//! equivalent aggregation throughput — which lets one water-filling pass
//! fill both resources jointly:
//!
//! 1. every active job's per-worker rate rises in lock-step;
//! 2. each link drains at `rate × flows`, each aggregating switch's PAT
//!    drains at `rate` per aggregating job;
//! 3. when a switch's PAT empties, the jobs aggregating there keep running
//!    but their flows fan out (Table 1), steepening their bandwidth drain;
//! 4. when a link empties, every job crossing it freezes at its current
//!    rate — its max-min fair share.
//!
//! # Example
//!
//! ```
//! use netpack_topology::{Cluster, ClusterSpec, ServerId, JobId};
//! use netpack_model::{Placement, JobHierarchy};
//! use netpack_waterfill::{estimate, PlacedJob};
//!
//! let cluster = Cluster::new(ClusterSpec::paper_testbed());
//! // Two identical jobs sharing the PS's access link.
//! let make = |id: u64, w1: usize, w2: usize, ps: usize| PlacedJob::new(
//!     JobId(id),
//!     &cluster,
//!     &Placement::new(vec![(ServerId(w1), 1), (ServerId(w2), 1)], Some(ServerId(ps))),
//! );
//! let jobs = [make(0, 0, 1, 2), make(1, 3, 4, 2)];
//! let state = estimate(&cluster, &jobs);
//! let r0 = state.job_rate_gbps(JobId(0)).unwrap();
//! let r1 = state.job_rate_gbps(JobId(1)).unwrap();
//! // Max-min fairness: the shared bottleneck splits evenly.
//! assert!((r0 - r1).abs() < 1e-6);
//! ```

//!
//! # Placement-time fast path
//!
//! [`estimate`] solves each resource-connected component of the job set
//! independently (jobs interact only through shared links or shared,
//! INA-active PAT pools). [`IncrementalEstimator`] exploits that: it keeps
//! the converged state warm and, when a job is added, re-solves only the
//! component the job touches — bit-identical to a from-scratch solve, but
//! skipping every untouched component. See the [`incremental`] module docs
//! for the invalidation rules.

pub mod incremental;
mod state;
mod synchronous;
mod waterfill;

pub use incremental::{IncrementalEstimator, WaterfillStats};
pub use state::SteadyState;
pub use synchronous::estimate_synchronous;
pub use waterfill::{estimate, PlacedJob};

/// Residuals below this threshold (in Gbps) are treated as exhausted.
pub const EPSILON_GBPS: f64 = 1e-9;
