//! Incremental steady-state estimation for placement-time scoring.
//!
//! During one `place_batch` call the placer runs Algorithm 1 once per job
//! it admits, each time with one more job than before. A from-scratch
//! [`estimate`](crate::estimate) re-solves every job every time; the
//! [`IncrementalEstimator`] instead snapshots the converged
//! [`SteadyState`] and, when a job is pushed, re-solves only the
//! resource-connected component the new job lands in — the links, racks,
//! and PAT pools it actually touches. Components it does not touch keep
//! their cached rates, flow counts, and residuals verbatim.
//!
//! Because [`estimate`](crate::estimate) itself solves per component (in
//! job insertion order), the incremental path replays the exact same
//! floating-point operations on the affected component and the result is
//! **bit-identical** to a from-scratch solve over the full job list. The
//! property test `incremental_push_matches_from_scratch_estimate`
//! (`tests/properties.rs`) pins this.
//!
//! # Invalidation rules
//!
//! Pushing a job dirties precisely the union of the components its
//! resource nodes connect to, where a job's resource nodes are its links
//! plus — only when it is INA-enabled — the PAT pools of its switches.
//! Everything else stays cached.
//!
//! Removing a job ([`remove`](IncrementalEstimator::remove)) dirties the
//! component the job *leaves*: its former co-members are regrouped (the
//! component may split now that the bridge is gone) and each surviving
//! sub-component is re-solved from virgin resources, again in global
//! insertion order. Resources only the removed job touched return to full
//! capacity. This is what lets a long-running simulation keep one warm
//! estimator across arbitrarily interleaved placements and completions —
//! the flow-level simulator's fast path.
//!
//! # Example
//!
//! ```
//! use netpack_topology::{Cluster, ClusterSpec, ServerId, JobId};
//! use netpack_model::Placement;
//! use netpack_waterfill::{estimate, IncrementalEstimator, PlacedJob};
//!
//! // Two racks of four servers; jobs in different racks share neither a
//! // link nor a PAT pool, so they never interact.
//! let cluster = Cluster::new(ClusterSpec {
//!     racks: 2,
//!     servers_per_rack: 4,
//!     ..ClusterSpec::paper_default()
//! });
//! let job = |id: u64, w: usize, ps: usize| PlacedJob::new(
//!     JobId(id),
//!     &cluster,
//!     &Placement::new(vec![(ServerId(w), 2)], Some(ServerId(ps))),
//! );
//! let running = [job(0, 0, 1)]; // rack 0
//! let mut inc = IncrementalEstimator::new(&cluster, &running);
//! inc.push(&cluster, job(1, 4, 5)); // rack 1
//! // Bit-identical to re-running Algorithm 1 from scratch:
//! let scratch = estimate(&cluster, &[job(0, 0, 1), job(1, 4, 5)]);
//! assert_eq!(inc.state().job_rate_gbps(JobId(1)), scratch.job_rate_gbps(JobId(1)));
//! // ...but the second job shares nothing with the first, so only one
//! // job was re-solved:
//! assert_eq!(inc.stats().jobs_resolved, 2); // 1 at new() + 1 at push()
//! assert_eq!(inc.stats().jobs_reused, 1);
//! ```

use crate::waterfill::{
    empty_state, link_capacity, partition_components, solve_component, Dsu, PlacedJob,
};
use crate::SteadyState;
use netpack_topology::{Cluster, JobId};

/// Work counters for one estimator instance.
///
/// `jobs_resolved + jobs_reused` over the estimator's lifetime equals the
/// total network-job work a from-scratch estimator would have done, so
/// `jobs_reused / (jobs_resolved + jobs_reused)` is the fraction of
/// water-filling work the cache saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaterfillStats {
    /// Incremental `push` calls served.
    pub pushes: u64,
    /// Incremental `remove` calls served.
    pub removes: u64,
    /// Network jobs actually water-filled (at construction and on
    /// pushes/removes).
    pub jobs_resolved: u64,
    /// Network jobs whose converged rates were kept from the snapshot
    /// instead of being re-solved.
    pub jobs_reused: u64,
    /// Resource-connected components re-solved.
    pub components_solved: u64,
}

/// Algorithm 1 with a warm cache: re-solves only the component a pushed
/// job touches.
///
/// See the [module docs](self) for the invalidation rules and the
/// bit-identical equivalence guarantee. All methods must be called with a
/// cluster topologically identical to the one passed to [`new`](Self::new).
#[derive(Debug, Clone)]
pub struct IncrementalEstimator {
    /// Every job seen so far, in insertion order (solve order).
    jobs: Vec<PlacedJob>,
    /// Per-job resource nodes; empty for local jobs.
    job_nodes: Vec<Vec<usize>>,
    /// Union-find over resource nodes (links, then rack PAT pools).
    dsu: Dsu,
    /// The converged steady state over all pushed jobs.
    state: SteadyState,
    stats: WaterfillStats,
    /// Count of jobs with at least one resource node, maintained on
    /// push/remove so the reuse accounting never rescans `job_nodes`.
    network_jobs: u64,
    /// Arena for the dirty component's member indices, reused across
    /// pushes so the placement hot loop allocates nothing here.
    scratch_members: Vec<usize>,
    /// Arena for the dirty component's resource nodes, ditto.
    scratch_dirty: Vec<usize>,
}

impl IncrementalEstimator {
    /// Solve the steady state of `jobs` from scratch and snapshot it.
    pub fn new(cluster: &Cluster, jobs: &[PlacedJob]) -> Self {
        let mut state = empty_state(cluster, jobs);
        let mut stats = WaterfillStats::default();
        for group in partition_components(cluster, jobs) {
            let members: Vec<&PlacedJob> = group.iter().map(|&i| &jobs[i]).collect();
            solve_component(cluster, &members, &mut state);
            stats.components_solved += 1;
            stats.jobs_resolved += members.len() as u64;
        }
        let mut dsu = Dsu::new(cluster.num_links() + cluster.num_racks());
        let mut job_nodes = Vec::with_capacity(jobs.len());
        for job in jobs {
            let nodes = job.resource_nodes(cluster);
            for w in nodes.windows(2) {
                dsu.union(w[0], w[1]);
            }
            job_nodes.push(nodes);
        }
        let network_jobs = job_nodes.iter().filter(|n| !n.is_empty()).count() as u64;
        IncrementalEstimator {
            jobs: jobs.to_vec(),
            job_nodes,
            dsu,
            state,
            stats,
            network_jobs,
            scratch_members: Vec::new(),
            scratch_dirty: Vec::new(),
        }
    }

    /// The converged steady state over every job pushed so far.
    pub fn state(&self) -> &SteadyState {
        &self.state
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> &WaterfillStats {
        &self.stats
    }

    /// Number of jobs currently in the estimate.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Resource nodes (sorted, deduplicated) that the most recent
    /// [`push`](Self::push) reset and re-solved — i.e. exactly the state
    /// entries whose residual bandwidth or flow count may differ from
    /// before that push. Empty after pushing a local (single-server) job.
    ///
    /// Node indices follow `PlacedJob::resource_nodes`: `0..num_links`
    /// are link indices (`LinkId::index`), `num_links..` are per-rack PAT
    /// slots. Only valid immediately after a `push`; `remove`/`pop`/
    /// `replace` do not maintain it. The speculative batch placer uses
    /// this as the footprint for conflict detection.
    pub fn last_dirty_nodes(&self) -> &[usize] {
        &self.scratch_dirty
    }

    /// Add `job` and re-solve only the component it lands in.
    ///
    /// The resulting [`state`](Self::state) is bit-identical to
    /// `estimate(cluster, all_jobs_so_far)`.
    pub fn push(&mut self, cluster: &Cluster, job: PlacedJob) {
        self.stats.pushes += 1;
        self.state.job_shards.insert(job.id(), job.shards());
        let nodes = job.resource_nodes(cluster);
        if nodes.is_empty() {
            // Local job: infinite rate, touches nothing. Clear the dirty
            // scratch so `last_dirty_nodes` reports "nothing changed"
            // rather than the previous push's component.
            self.scratch_dirty.clear();
            self.state.job_rates.insert(job.id(), f64::INFINITY);
            self.stats.jobs_reused += self.network_jobs;
            self.jobs.push(job);
            self.job_nodes.push(nodes);
            return;
        }
        self.network_jobs += 1;
        for w in nodes.windows(2) {
            self.dsu.union(w[0], w[1]);
        }
        // Any node of the new job anchors its component; taken before the
        // push moves `nodes` (the empty case returned above).
        let anchor = nodes[0];
        self.jobs.push(job);
        self.job_nodes.push(nodes);

        // Member jobs of the (possibly merged) dirty component, in global
        // insertion order — the same order a from-scratch solve would use.
        let root = self.dsu.find(anchor);
        let mut members = std::mem::take(&mut self.scratch_members);
        members.clear();
        for (i, nodes) in self.job_nodes.iter().enumerate() {
            if let Some(&first) = nodes.first() {
                if self.dsu.find(first) == root {
                    members.push(i);
                }
            }
        }

        // Reset exactly the dirty component's resources to virgin capacity;
        // resource nodes of other components are disjoint and untouched.
        let n_links = cluster.num_links();
        let mut dirty = std::mem::take(&mut self.scratch_dirty);
        dirty.clear();
        dirty.extend(members.iter().flat_map(|&i| self.job_nodes[i].iter().copied()));
        dirty.sort_unstable();
        dirty.dedup();
        for &node in &dirty {
            if node < n_links {
                self.state.link_residual[node] = link_capacity(cluster, node);
                self.state.link_flows[node] = 0;
            } else {
                self.state.pat_residual[node - n_links] =
                    cluster.racks()[node - n_links].pat_gbps();
            }
        }

        let refs: Vec<&PlacedJob> = members.iter().map(|&i| &self.jobs[i]).collect();
        solve_component(cluster, &refs, &mut self.state);
        self.stats.components_solved += 1;
        self.stats.jobs_resolved += refs.len() as u64;
        self.stats.jobs_reused += self.network_jobs - refs.len() as u64;
        self.scratch_members = members;
        self.scratch_dirty = dirty;
    }

    /// Remove the job `id` and re-solve only the component it leaves.
    ///
    /// The former component may split now that the removed job's resources
    /// no longer bridge its co-members; each surviving sub-component is
    /// re-filled from virgin capacity in global insertion order, so the
    /// resulting [`state`](Self::state) is bit-identical to
    /// `estimate(cluster, remaining_jobs_in_insertion_order)`. Returns
    /// `false` (and changes nothing) when `id` is not in the estimate.
    pub fn remove(&mut self, cluster: &Cluster, id: JobId) -> bool {
        let Some(idx) = self.jobs.iter().position(|j| j.id() == id) else {
            return false;
        };
        self.remove_at(cluster, idx);
        true
    }

    /// Remove the most recently pushed job — the exact inverse of
    /// [`push`](Self::push), which is what a depth-first search needs to
    /// backtrack one decision. Counted under
    /// [`removes`](WaterfillStats::removes). Returns the popped job's id,
    /// or `None` when the estimate is empty.
    pub fn pop(&mut self, cluster: &Cluster) -> Option<JobId> {
        let idx = self.jobs.len().checked_sub(1)?;
        let id = self.jobs[idx].id();
        self.remove_at(cluster, idx);
        Some(id)
    }

    fn remove_at(&mut self, cluster: &Cluster, idx: usize) {
        let id = self.jobs[idx].id();
        self.stats.removes += 1;
        // Take, don't clone: the slot is deleted below either way.
        let removed_nodes = std::mem::take(&mut self.job_nodes[idx]);
        // Pre-removal indices of the network jobs sharing the removed job's
        // component — the only jobs whose converged numbers can change.
        let mut co: Vec<usize> = Vec::new();
        if !removed_nodes.is_empty() {
            let root = self.dsu.find(removed_nodes[0]);
            for (i, nodes) in self.job_nodes.iter().enumerate() {
                if i == idx {
                    continue;
                }
                if let Some(&first) = nodes.first() {
                    if self.dsu.find(first) == root {
                        co.push(i);
                    }
                }
            }
        }
        self.jobs.remove(idx);
        self.job_nodes.remove(idx);
        self.state.job_rates.remove(&id);
        self.state.job_shards.remove(&id);
        for i in &mut co {
            if *i > idx {
                *i -= 1;
            }
        }
        if removed_nodes.is_empty() {
            // Local job: it touched no resource, so every cached component
            // survives verbatim.
            self.stats.jobs_reused += self.network_jobs;
            return;
        }
        self.network_jobs -= 1;

        // Union-find supports no deletion: rebuild it over the remaining
        // jobs. This is cheap array work; the expensive part — the
        // water-filling below — stays restricted to the left component.
        self.dsu = Dsu::new(cluster.num_links() + cluster.num_racks());
        for nodes in &self.job_nodes {
            for w in nodes.windows(2) {
                self.dsu.union(w[0], w[1]);
            }
        }

        // Reset the left component's resources to virgin capacity; nodes
        // only the removed job touched return to (and stay at) full
        // capacity, exactly as a from-scratch solve would leave them.
        let n_links = cluster.num_links();
        let mut dirty = removed_nodes;
        dirty.extend(co.iter().flat_map(|&i| self.job_nodes[i].iter().copied()));
        dirty.sort_unstable();
        dirty.dedup();
        for node in dirty {
            if node < n_links {
                self.state.link_residual[node] = link_capacity(cluster, node);
                self.state.link_flows[node] = 0;
            } else {
                self.state.pat_residual[node - n_links] =
                    cluster.racks()[node - n_links].pat_gbps();
            }
        }

        // Group the co-members by their new root (the component may have
        // split) and water-fill each sub-component; `co` is ascending, so
        // members stay in global insertion order within each group.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for &i in &co {
            let root = self.dsu.find(self.job_nodes[i][0]);
            match groups.iter_mut().find(|(r, _)| *r == root) {
                Some((_, g)) => g.push(i),
                None => groups.push((root, vec![i])),
            }
        }
        for (_, group) in &groups {
            let refs: Vec<&PlacedJob> = group.iter().map(|&i| &self.jobs[i]).collect();
            solve_component(cluster, &refs, &mut self.state);
            self.stats.components_solved += 1;
            self.stats.jobs_resolved += refs.len() as u64;
        }
        self.stats.jobs_reused += self.network_jobs - co.len() as u64;
    }

    /// Re-tune a job in place: remove any existing job with `job`'s id,
    /// then push `job`. The result is bit-identical to a from-scratch
    /// solve over the current job list with the re-tuned job moved to the
    /// end of the insertion order.
    pub fn replace(&mut self, cluster: &Cluster, job: PlacedJob) {
        self.remove(cluster, job.id());
        self.push(cluster, job);
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate;
    use netpack_model::Placement;
    use netpack_topology::{ClusterSpec, JobId, RackId, ServerId};

    fn cluster(racks: usize, servers_per_rack: usize, pat: f64) -> Cluster {
        Cluster::new(ClusterSpec {
            racks,
            servers_per_rack,
            gpus_per_server: 4,
            server_link_gbps: 100.0,
            pat_gbps: pat,
            oversubscription: 1.0,
            rtt_us: 50.0,
            racks_per_pod: None,
        })
    }

    fn job(id: u64, c: &Cluster, workers: Vec<(usize, usize)>, ps: usize) -> PlacedJob {
        let p = Placement::new(
            workers.into_iter().map(|(s, w)| (ServerId(s), w)).collect(),
            Some(ServerId(ps)),
        );
        PlacedJob::new(JobId(id), c, &p)
    }

    /// Bitwise equality, including the NaN-free invariant.
    fn assert_state_eq(a: &SteadyState, b: &SteadyState) {
        assert_eq!(a.link_residual, b.link_residual);
        assert_eq!(a.link_flows, b.link_flows);
        assert_eq!(a.pat_residual, b.pat_residual);
        assert_eq!(a.job_shards, b.job_shards);
        assert_eq!(a.job_rates.len(), b.job_rates.len());
        for (id, rate) in &a.job_rates {
            let other = b.job_rates.get(id).copied();
            assert_eq!(Some(*rate), other, "rate mismatch for {id:?}");
        }
    }

    #[test]
    fn push_matches_from_scratch_bitwise() {
        let c = cluster(2, 4, 60.0);
        let all = [
            job(0, &c, vec![(0, 2), (4, 2)], 1),
            job(1, &c, vec![(2, 1), (5, 1)], 6),
            job(2, &c, vec![(3, 4)], 7),
            job(3, &c, vec![(1, 1), (2, 1)], 0),
        ];
        let mut inc = IncrementalEstimator::new(&c, &all[..1]);
        for k in 1..=all.len() {
            if k > 1 {
                inc.push(&c, all[k - 1].clone());
            }
            assert_state_eq(inc.state(), &estimate(&c, &all[..k]));
        }
    }

    #[test]
    fn untouched_component_is_not_resolved() {
        // Rack 0 and rack 1 jobs share no resource: pushing into rack 1
        // must not re-solve (or even re-read) the rack-0 component.
        let c = cluster(2, 3, 500.0);
        let a = job(0, &c, vec![(0, 1), (1, 1)], 2);
        let b = job(1, &c, vec![(3, 1), (4, 1)], 5);
        let mut inc = IncrementalEstimator::new(&c, std::slice::from_ref(&a));
        assert_eq!(inc.stats().jobs_resolved, 1);

        let rate_a_before = inc.state().job_rate_gbps(JobId(0));
        let rack0_pat_before = inc.state().pat_residual_gbps(RackId(0));
        inc.push(&c, b);

        // Only the new one-job component was water-filled...
        assert_eq!(inc.stats().pushes, 1);
        assert_eq!(inc.stats().jobs_resolved, 2);
        assert_eq!(inc.stats().jobs_reused, 1);
        assert_eq!(inc.stats().components_solved, 2);
        // ...and the cached component's numbers survived verbatim.
        assert_eq!(inc.state().job_rate_gbps(JobId(0)), rate_a_before);
        assert_eq!(inc.state().pat_residual_gbps(RackId(0)), rack0_pat_before);
    }

    #[test]
    fn push_merging_two_components_resolves_both() {
        // Jobs in racks 0 and 1; a third job spanning both racks merges
        // the components, so all three must be re-solved.
        let c = cluster(2, 3, 500.0);
        let a = job(0, &c, vec![(0, 1), (1, 1)], 2);
        let b = job(1, &c, vec![(3, 1), (4, 1)], 5);
        let bridge = job(2, &c, vec![(0, 1), (3, 1)], 1);
        let mut inc = IncrementalEstimator::new(&c, &[a.clone(), b.clone()]);
        assert_eq!(inc.stats().jobs_resolved, 2);
        inc.push(&c, bridge.clone());
        assert_eq!(inc.stats().jobs_resolved, 5, "merge must re-solve all 3");
        assert_state_eq(inc.state(), &estimate(&c, &[a, b, bridge]));
    }

    #[test]
    fn remove_matches_from_scratch_bitwise() {
        let c = cluster(2, 4, 60.0);
        let all = [
            job(0, &c, vec![(0, 2), (4, 2)], 1),
            job(1, &c, vec![(2, 1), (5, 1)], 6),
            job(2, &c, vec![(3, 4)], 7),
            job(3, &c, vec![(1, 1), (2, 1)], 0),
        ];
        let mut inc = IncrementalEstimator::new(&c, &all);
        // Remove the jobs one by one (middle-out) and check against a
        // from-scratch solve of the survivors after every step.
        assert!(inc.remove(&c, JobId(1)));
        assert_state_eq(
            inc.state(),
            &estimate(&c, &[all[0].clone(), all[2].clone(), all[3].clone()]),
        );
        assert!(inc.remove(&c, JobId(3)));
        assert_state_eq(inc.state(), &estimate(&c, &[all[0].clone(), all[2].clone()]));
        assert!(inc.remove(&c, JobId(0)));
        assert_state_eq(inc.state(), &estimate(&c, std::slice::from_ref(&all[2])));
        assert!(inc.remove(&c, JobId(2)));
        assert_state_eq(inc.state(), &estimate(&c, &[]));
        assert_eq!(inc.num_jobs(), 0);
        assert_eq!(inc.stats().removes, 4);
    }

    #[test]
    fn remove_unknown_job_is_a_noop() {
        let c = cluster(1, 3, 500.0);
        let a = job(0, &c, vec![(0, 1), (1, 1)], 2);
        let mut inc = IncrementalEstimator::new(&c, std::slice::from_ref(&a));
        let before = inc.state().clone();
        assert!(!inc.remove(&c, JobId(99)));
        assert_state_eq(inc.state(), &before);
        assert_eq!(inc.stats().removes, 0);
    }

    #[test]
    fn removing_a_bridge_splits_the_component() {
        // Jobs in racks 0 and 1 joined by a bridge job spanning both; when
        // the bridge finishes, the survivors re-solve as two components.
        let c = cluster(2, 3, 500.0);
        let a = job(0, &c, vec![(0, 1), (1, 1)], 2);
        let b = job(1, &c, vec![(3, 1), (4, 1)], 5);
        let bridge = job(2, &c, vec![(0, 1), (3, 1)], 1);
        let mut inc = IncrementalEstimator::new(&c, &[a.clone(), b.clone(), bridge]);
        let solved_before = inc.stats().components_solved;
        inc.remove(&c, JobId(2));
        assert_eq!(
            inc.stats().components_solved - solved_before,
            2,
            "the split must yield two independent re-solves"
        );
        assert_state_eq(inc.state(), &estimate(&c, &[a, b]));
    }

    #[test]
    fn remove_does_not_touch_disjoint_components() {
        let c = cluster(2, 3, 500.0);
        let a = job(0, &c, vec![(0, 1), (1, 1)], 2);
        let b = job(1, &c, vec![(3, 1), (4, 1)], 5);
        let mut inc = IncrementalEstimator::new(&c, &[a.clone(), b.clone()]);
        let rate_b = inc.state().job_rate_gbps(JobId(1));
        let resolved_before = inc.stats().jobs_resolved;
        inc.remove(&c, JobId(0));
        // Rack-1's component was reused verbatim, not re-filled.
        assert_eq!(inc.stats().jobs_resolved, resolved_before);
        assert_eq!(inc.stats().jobs_reused, 1);
        assert_eq!(inc.state().job_rate_gbps(JobId(1)), rate_b);
        assert_state_eq(inc.state(), &estimate(&c, std::slice::from_ref(&b)));
    }

    #[test]
    fn removing_a_local_job_costs_nothing() {
        let c = cluster(1, 3, 500.0);
        let net = job(0, &c, vec![(0, 1), (1, 1)], 2);
        let local = PlacedJob::new(JobId(9), &c, &Placement::local(ServerId(0), 4));
        let mut inc = IncrementalEstimator::new(&c, std::slice::from_ref(&net));
        inc.push(&c, local);
        let resolved_before = inc.stats().jobs_resolved;
        inc.remove(&c, JobId(9));
        assert_eq!(inc.stats().jobs_resolved, resolved_before);
        assert_state_eq(inc.state(), &estimate(&c, &[net]));
    }

    #[test]
    fn pop_is_the_exact_inverse_of_push() {
        // The exact placer's backtracking pattern: push a candidate, recurse,
        // pop. After every pop the state must be bit-identical to a
        // from-scratch solve over the surviving insertion order.
        let c = cluster(2, 4, 60.0);
        let base = [
            job(0, &c, vec![(0, 2), (4, 2)], 1),
            job(1, &c, vec![(2, 1), (5, 1)], 6),
        ];
        let mut inc = IncrementalEstimator::new(&c, &base);
        let snapshot = inc.state().clone();
        inc.push(&c, job(2, &c, vec![(3, 4)], 7));
        inc.push(&c, job(3, &c, vec![(1, 1), (2, 1)], 0));
        assert_eq!(inc.pop(&c), Some(JobId(3)));
        assert_state_eq(
            inc.state(),
            &estimate(&c, &[base[0].clone(), base[1].clone(), job(2, &c, vec![(3, 4)], 7)]),
        );
        assert_eq!(inc.pop(&c), Some(JobId(2)));
        assert_state_eq(inc.state(), &snapshot);
        assert_eq!(inc.num_jobs(), 2);
        assert_eq!(inc.stats().removes, 2);
    }

    #[test]
    fn pop_on_empty_returns_none() {
        let c = cluster(1, 3, 500.0);
        let mut inc = IncrementalEstimator::new(&c, &[]);
        assert_eq!(inc.pop(&c), None);
        assert_eq!(inc.stats().removes, 0);
    }

    #[test]
    fn replace_retunes_a_job_in_place() {
        let c = cluster(1, 4, 500.0);
        let a = job(0, &c, vec![(0, 1), (1, 1)], 2);
        let b = job(1, &c, vec![(0, 2)], 3);
        let mut inc = IncrementalEstimator::new(&c, &[a, b.clone()]);
        // Job 0 migrates to a different worker set.
        let moved = job(0, &c, vec![(2, 1), (3, 1)], 1);
        inc.replace(&c, moved.clone());
        assert_eq!(inc.num_jobs(), 2);
        // Equivalent from-scratch order: survivors first, replaced job last.
        assert_state_eq(inc.state(), &estimate(&c, &[b, moved]));
    }

    #[test]
    fn local_jobs_cost_nothing() {
        let c = cluster(1, 3, 500.0);
        let net = job(0, &c, vec![(0, 1), (1, 1)], 2);
        let mut inc = IncrementalEstimator::new(&c, std::slice::from_ref(&net));
        let local = PlacedJob::new(JobId(9), &c, &Placement::local(ServerId(0), 4));
        inc.push(&c, local);
        assert_eq!(inc.stats().jobs_resolved, 1);
        assert_eq!(inc.stats().components_solved, 1);
        assert_eq!(inc.state().job_rate_gbps(JobId(9)), Some(f64::INFINITY));
        assert_eq!(inc.num_jobs(), 2);
        assert_state_eq(
            inc.state(),
            &estimate(
                &c,
                &[net, PlacedJob::new(JobId(9), &c, &Placement::local(ServerId(0), 4))],
            ),
        );
    }
}
