//! Steady-state estimation under *synchronous* INA — the comparison
//! substrate for statistical INA's cluster-level advantage (§2.2).
//!
//! Synchronous INA (SwitchML-style) statically partitions each ToR's
//! memory into per-job regions reserved for the job's lifetime. We model
//! the naive equal partition (each registered job gets `PAT / n` at each
//! of its switches):
//!
//! * a job **with** a region is always fully aggregated (one flow per
//!   switch output) but can never stream faster than its smallest region
//!   allows — the region is a hard rate cap, with no fallback path;
//! * a job **without** a region (the partition rounds to zero, or the job
//!   was placed with INA disabled) falls back to plain PS AllReduce over
//!   the network: unaggregated flows, no cap.
//!
//! This is deliberately the *uncoordinated* synchronous baseline; a
//! controller like INAlloc would re-partition periodically, trading the
//! control-plane complexity the paper's §2.2 argues against.

use crate::{PlacedJob, SteadyState, EPSILON_GBPS};
use netpack_topology::{Cluster, JobId, RackId};
use std::collections::BTreeMap;

/// Estimate the steady state when the switches run synchronous INA with
/// equal static partitions.
///
/// Shares link bandwidth max-min like [`estimate`](crate::estimate), but
/// switch memory is a static per-job cap instead of a shared pool.
pub fn estimate_synchronous(cluster: &Cluster, jobs: &[PlacedJob]) -> SteadyState {
    let n_links = cluster.num_links();
    let n_servers = cluster.num_servers();
    let n_racks = cluster.num_racks();

    let mut bw: Vec<f64> = Vec::with_capacity(n_links);
    bw.resize(n_servers, cluster.spec().server_link_gbps);
    for r in 0..n_racks {
        bw.push(cluster.racks()[r].uplink_gbps());
    }

    // Static partition: count INA jobs registered at each switch.
    let mut rack_regs = vec![0u32; n_racks];
    for job in jobs {
        for h in job.components() {
            if h.ina_enabled() {
                for r in h.switches() {
                    rack_regs[r.0] += 1;
                }
            }
        }
    }
    let region = |r: RackId| {
        let regs = rack_regs[r.0];
        if regs == 0 {
            0.0
        } else {
            cluster.racks()[r.0].pat_gbps() / f64::from(regs)
        }
    };

    struct Active {
        id: JobId,
        flows: Vec<(usize, u32)>,
        /// Region-induced rate cap (infinite for fallback jobs).
        cap: f64,
        rate: f64,
        frozen: bool,
    }
    let mut job_rates: BTreeMap<JobId, f64> = BTreeMap::new();
    let mut job_shards: BTreeMap<JobId, usize> = BTreeMap::new();
    let mut active: Vec<Active> = Vec::new();
    for job in jobs {
        job_shards.insert(job.id(), job.shards());
        if job.components().is_empty() {
            job_rates.insert(job.id(), f64::INFINITY);
            continue;
        }
        // The job aggregates iff INA is on and every switch grants a
        // non-zero region; otherwise it falls back to host AllReduce.
        let ina = job.components().iter().all(|h| h.ina_enabled());
        let cap = if ina {
            job.components()
                .iter()
                .flat_map(|h| h.switches())
                .map(region)
                .fold(f64::INFINITY, f64::min)
        } else {
            0.0
        };
        let aggregated = cap > EPSILON_GBPS;
        let mut flows: Vec<(usize, u32)> = Vec::new();
        for h in job.components() {
            for (l, f) in h.link_flows(|_| aggregated) {
                let idx = l.index(cluster);
                match flows.iter_mut().find(|(i, _)| *i == idx) {
                    Some(e) => e.1 += f,
                    None => flows.push((idx, f)),
                }
            }
        }
        active.push(Active {
            id: job.id(),
            flows,
            cap: if aggregated { cap } else { f64::INFINITY },
            rate: 0.0,
            frozen: false,
        });
    }

    let mut unfrozen = active.len();
    let max_rounds = 2 * n_links + active.len() + 8;
    for _ in 0..max_rounds {
        if unfrozen == 0 {
            break;
        }
        let mut link_flows_total = vec![0u64; n_links];
        for a in active.iter().filter(|a| !a.frozen) {
            for &(l, f) in &a.flows {
                link_flows_total[l] += u64::from(f);
            }
        }
        let mut delta = f64::INFINITY;
        for l in 0..n_links {
            if link_flows_total[l] > 0 {
                delta = delta.min(bw[l].max(0.0) / link_flows_total[l] as f64);
            }
        }
        for a in active.iter().filter(|a| !a.frozen) {
            if a.cap.is_finite() {
                delta = delta.min(a.cap - a.rate);
            }
        }
        if !delta.is_finite() {
            for a in active.iter_mut().filter(|a| !a.frozen) {
                a.frozen = true;
            }
            break;
        }
        for a in active.iter_mut().filter(|a| !a.frozen) {
            a.rate += delta;
            for &(l, f) in &a.flows {
                bw[l] -= delta * f64::from(f);
            }
        }
        // Freeze at caps and on saturated links.
        for a in active.iter_mut().filter(|a| !a.frozen) {
            let capped = a.cap.is_finite() && a.rate + EPSILON_GBPS >= a.cap;
            let bottlenecked = a
                .flows
                .iter()
                .any(|&(l, f)| f > 0 && bw[l] <= EPSILON_GBPS);
            if capped || bottlenecked {
                a.frozen = true;
                unfrozen -= 1;
            }
        }
    }

    let mut link_job_count = vec![0u32; n_links];
    for a in &active {
        job_rates.insert(a.id, a.rate);
        for &(l, f) in &a.flows {
            link_job_count[l] += f;
        }
    }
    SteadyState {
        job_rates,
        job_shards,
        link_residual: bw.into_iter().map(|b| b.max(0.0)).collect(),
        link_flows: link_job_count,
        pat_residual: (0..n_racks)
            .map(|r| {
                // Residual = unpartitioned memory (registration slots are
                // reserved whether or not the job can use them fully).
                if rack_regs[r] == 0 {
                    cluster.racks()[r].pat_gbps()
                } else {
                    0.0
                }
            })
            .collect(),
        num_servers: n_servers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_model::Placement;
    use netpack_topology::{ClusterSpec, ServerId};

    fn cluster(pat: f64, servers: usize) -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: servers,
            gpus_per_server: 4,
            pat_gbps: pat,
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, c: &Cluster, w: [usize; 2], ps: usize) -> PlacedJob {
        PlacedJob::new(
            JobId(id),
            c,
            &Placement::new(
                vec![(ServerId(w[0]), 1), (ServerId(w[1]), 1)],
                Some(ServerId(ps)),
            ),
        )
    }

    #[test]
    fn lone_job_is_capped_by_its_region() {
        let c = cluster(40.0, 3);
        let s = estimate_synchronous(&c, &[job(0, &c, [0, 1], 2)]);
        // Region = 40 (only registrant); links would allow 100.
        let rate = s.job_rate_gbps(JobId(0)).unwrap();
        assert!((rate - 40.0).abs() < 1e-6, "rate {rate}");
    }

    #[test]
    fn partition_halves_with_two_jobs() {
        let c = cluster(40.0, 6);
        let jobs = [job(0, &c, [0, 1], 2), job(1, &c, [3, 4], 5)];
        let s = estimate_synchronous(&c, &jobs);
        for id in [JobId(0), JobId(1)] {
            let rate = s.job_rate_gbps(id).unwrap();
            assert!((rate - 20.0).abs() < 1e-6, "rate {rate}");
        }
        assert_eq!(s.pat_residual_gbps(netpack_topology::RackId(0)), 0.0);
    }

    #[test]
    fn statistical_dominates_synchronous_under_scarce_memory() {
        // The §2.2 claim at estimator level: same jobs, same cluster,
        // statistical INA yields at least the synchronous rate for the
        // worst-off job.
        let c = cluster(40.0, 6);
        let jobs = [job(0, &c, [0, 1], 2), job(1, &c, [3, 4], 5)];
        let stat = crate::estimate(&c, &jobs);
        let sync = estimate_synchronous(&c, &jobs);
        for id in [JobId(0), JobId(1)] {
            let rs = stat.job_rate_gbps(id).unwrap();
            let ry = sync.job_rate_gbps(id).unwrap();
            assert!(rs >= ry - 1e-6, "statistical {rs} < synchronous {ry}");
        }
    }

    #[test]
    fn ina_disabled_jobs_fall_back_unaggregated() {
        let c = cluster(40.0, 3);
        let mut p = Placement::new(vec![(ServerId(0), 1), (ServerId(1), 1)], Some(ServerId(2)));
        p.set_ina_enabled(false);
        let s = estimate_synchronous(&c, &[PlacedJob::new(JobId(0), &c, &p)]);
        // 2 unaggregated flows into the PS link: 50 Gbps, not capped at 40.
        let rate = s.job_rate_gbps(JobId(0)).unwrap();
        assert!((rate - 50.0).abs() < 1e-6, "rate {rate}");
    }

    #[test]
    fn zero_pat_synchronous_degrades_to_host_allreduce() {
        let c = cluster(0.0, 3);
        let s = estimate_synchronous(&c, &[job(0, &c, [0, 1], 2)]);
        let rate = s.job_rate_gbps(JobId(0)).unwrap();
        // No region => fallback: 2 flows on the PS link => 50.
        assert!((rate - 50.0).abs() < 1e-6, "rate {rate}");
    }

    #[test]
    fn local_jobs_are_unaffected() {
        let c = cluster(40.0, 3);
        let local = PlacedJob::new(JobId(0), &c, &Placement::local(ServerId(0), 4));
        let s = estimate_synchronous(&c, &[local]);
        assert_eq!(s.job_rate_gbps(JobId(0)), Some(f64::INFINITY));
    }
}
