//! The converged steady state produced by the estimator.

use crate::EPSILON_GBPS;
use netpack_topology::{Cluster, JobId, LinkId, RackId, ServerId};
use std::collections::BTreeMap;

/// The converged max-min steady state of a set of placed jobs.
///
/// Produced by [`estimate`](crate::estimate). All residuals are reported
/// under the one-big-switch link layout (`LinkId::index`).
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyState {
    pub(crate) job_rates: BTreeMap<JobId, f64>,
    pub(crate) job_shards: BTreeMap<JobId, usize>,
    pub(crate) link_residual: Vec<f64>,
    pub(crate) link_flows: Vec<u32>,
    pub(crate) pat_residual: Vec<f64>,
    pub(crate) num_servers: usize,
}

impl SteadyState {
    /// The per-worker steady streaming rate of a job, in Gbps.
    ///
    /// Local (single-server) jobs report `f64::INFINITY` — they have no
    /// communication phase at all. Unknown jobs report `None`.
    pub fn job_rate_gbps(&self, job: JobId) -> Option<f64> {
        self.job_rates.get(&job).copied()
    }

    /// Number of gradient shards (parameter servers) of a job.
    pub fn job_shards(&self, job: JobId) -> Option<usize> {
        self.job_shards.get(&job).copied().or_else(|| {
            // Jobs recorded before sharding existed default to one shard.
            self.job_rates.contains_key(&job).then_some(1)
        })
    }

    /// Iteration communication time in seconds for a job streaming
    /// `gradient_gbits` per worker per iteration; zero for local jobs.
    ///
    /// For sharded (multi-PS) jobs the gradient is split evenly across the
    /// shards, each carried by its own tree at the reported rate, so the
    /// time is `gradient / (shards × rate)`.
    pub fn comm_time_s(&self, job: JobId, gradient_gbits: f64) -> Option<f64> {
        let rate = self.job_rate_gbps(job)?;
        if rate.is_infinite() {
            return Some(0.0);
        }
        if rate <= 0.0 {
            return Some(f64::INFINITY);
        }
        let shards = self.job_shards(job).unwrap_or(1).max(1) as f64;
        Some(gradient_gbits / (shards * rate))
    }

    /// Residual (unallocated) bandwidth on a link, in Gbps.
    pub fn link_residual_gbps(&self, link: LinkId, cluster: &Cluster) -> f64 {
        self.link_residual[link.index(cluster)]
    }

    /// Number of steady-state flows on a link (all jobs, converged view).
    pub fn link_flows(&self, link: LinkId, cluster: &Cluster) -> u32 {
        self.link_flows[link.index(cluster)]
    }

    /// Residual PAT of a rack's ToR switch, in Gbps.
    pub fn pat_residual_gbps(&self, rack: RackId) -> f64 {
        self.pat_residual[rack.0]
    }

    /// Whether a rack's ToR switch still has aggregation headroom.
    pub fn rack_aggregating(&self, rack: RackId) -> bool {
        self.pat_residual[rack.0] > EPSILON_GBPS
    }

    /// Available bandwidth on a server's access link (`s.bw̄` in the
    /// paper's server-valuation heuristic).
    pub fn server_available_gbps(&self, server: ServerId) -> f64 {
        self.link_residual[server.0]
    }

    /// Steady-state flow count on a server's access link (`s.flows`).
    pub fn server_flows(&self, server: ServerId) -> u32 {
        self.link_flows[server.0]
    }

    /// Number of jobs the estimate covers.
    pub fn num_jobs(&self) -> usize {
        self.job_rates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_state() -> SteadyState {
        SteadyState {
            job_rates: BTreeMap::from([(JobId(0), 25.0), (JobId(1), f64::INFINITY)]),
            job_shards: BTreeMap::from([(JobId(0), 1), (JobId(1), 1)]),
            link_residual: vec![50.0, 0.0, 100.0],
            link_flows: vec![1, 3, 0],
            pat_residual: vec![10.0, 0.0],
            num_servers: 2,
        }
    }

    #[test]
    fn comm_time_divides_gradient_by_rate() {
        let s = tiny_state();
        assert_eq!(s.comm_time_s(JobId(0), 50.0), Some(2.0));
        assert_eq!(s.comm_time_s(JobId(1), 50.0), Some(0.0));
        assert_eq!(s.comm_time_s(JobId(9), 50.0), None);
    }

    #[test]
    fn server_accessors_index_access_links() {
        let s = tiny_state();
        assert_eq!(s.server_available_gbps(ServerId(0)), 50.0);
        assert_eq!(s.server_available_gbps(ServerId(1)), 0.0);
        assert_eq!(s.server_flows(ServerId(1)), 3);
    }

    #[test]
    fn rack_aggregating_uses_epsilon() {
        let s = tiny_state();
        assert!(s.rack_aggregating(RackId(0)));
        assert!(!s.rack_aggregating(RackId(1)));
    }

    #[test]
    fn zero_rate_job_has_infinite_comm_time() {
        let mut s = tiny_state();
        s.job_rates.insert(JobId(2), 0.0);
        assert_eq!(s.comm_time_s(JobId(2), 1.0), Some(f64::INFINITY));
    }
}
