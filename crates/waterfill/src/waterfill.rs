//! The INA-specific water-filling loop (Algorithm 1).
//!
//! Since the placement-time fast path landed, the estimator is organized
//! around **resource-connected components**: two jobs interact only if they
//! share a link, or share a ToR switch's PAT pool while both aggregate.
//! [`estimate`] partitions the jobs into components with a union-find over
//! resource nodes and water-fills each component independently — the
//! max-min allocation of a component depends only on its own jobs, so this
//! is exact, and it is what lets [`IncrementalEstimator`](crate::IncrementalEstimator)
//! re-solve only the component a new job lands in.

use crate::{SteadyState, EPSILON_GBPS};
use netpack_model::{JobHierarchy, Placement};
use netpack_topology::{Cluster, JobId, RackId};
use std::collections::BTreeMap;

/// A job that has been placed into the cluster, as the estimator sees it.
///
/// Built from a [`Placement`] with [`PlacedJob::new`]; local placements
/// carry no hierarchy and are reported with infinite rate. A sharded
/// (multi-PS) placement contributes one aggregation tree per PS; the trees
/// fill in lock-step because every worker streams each gradient shard at
/// the same rate (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedJob {
    id: JobId,
    components: Vec<JobHierarchy>,
    shards: usize,
}

impl PlacedJob {
    /// Wrap a placement for estimation.
    pub fn new(id: JobId, cluster: &Cluster, placement: &Placement) -> Self {
        PlacedJob {
            id,
            components: JobHierarchy::components_from_placement(cluster, placement),
            shards: placement.shards(),
        }
    }

    /// Build directly from a pre-computed hierarchy (`None` = local job).
    pub fn from_hierarchy(id: JobId, hierarchy: Option<JobHierarchy>) -> Self {
        PlacedJob {
            id,
            components: hierarchy.into_iter().collect(),
            shards: 1,
        }
    }

    /// This job's identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The (first) aggregation hierarchy, if the job generates traffic.
    pub fn hierarchy(&self) -> Option<&JobHierarchy> {
        self.components.first()
    }

    /// All aggregation trees (one per gradient shard with network traffic).
    pub fn components(&self) -> &[JobHierarchy] {
        &self.components
    }

    /// Number of gradient shards (PS count; at least 1).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether this job generates network traffic at all.
    pub fn is_network(&self) -> bool {
        !self.components.is_empty()
    }

    /// The indices of every resource node this job can touch during
    /// filling: its links (by [`netpack_topology::LinkId::index`]) plus,
    /// when it participates in INA, the PAT pools of its switches (offset
    /// by `cluster.num_links()`).
    ///
    /// The link *set* of a hierarchy does not depend on the aggregation
    /// predicate (only the flow counts do), so one predicate-free pass
    /// suffices. Returns an empty vector for local jobs.
    pub(crate) fn resource_nodes(&self, cluster: &Cluster) -> Vec<usize> {
        let n_links = cluster.num_links();
        let mut nodes: Vec<usize> = Vec::new();
        for h in &self.components {
            for (l, _) in h.link_flows(|_| false) {
                nodes.push(l.index(cluster));
            }
        }
        if self.components.iter().any(JobHierarchy::ina_enabled) {
            for h in &self.components {
                for r in h.switches() {
                    nodes.push(n_links + r.0);
                }
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// Minimal union-find over resource-node indices.
#[derive(Debug, Clone)]
pub(crate) struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    pub(crate) fn new(nodes: usize) -> Self {
        Dsu {
            parent: (0..nodes).collect(),
        }
    }

    pub(crate) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: the smaller root wins, so component identity
            // does not depend on union order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Virgin capacity of the link with flat index `idx` (server access links
/// first, then one uplink per rack — the same layout as `SteadyState`).
pub(crate) fn link_capacity(cluster: &Cluster, idx: usize) -> f64 {
    let n_servers = cluster.num_servers();
    if idx < n_servers {
        cluster.spec().server_link_gbps
    } else {
        cluster.racks()[idx - n_servers].uplink_gbps()
    }
}

/// A virgin steady state: full residuals, no flows, and rates recorded for
/// every job (`∞` for local jobs, `0.0` placeholder for network jobs that
/// [`solve_component`] will overwrite).
pub(crate) fn empty_state(cluster: &Cluster, jobs: &[PlacedJob]) -> SteadyState {
    let n_servers = cluster.num_servers();
    let n_links = cluster.num_links();
    let mut bw: Vec<f64> = Vec::with_capacity(n_links);
    bw.resize(n_servers, cluster.spec().server_link_gbps);
    for rack in cluster.racks() {
        bw.push(rack.uplink_gbps());
    }
    let mut job_rates = BTreeMap::new();
    let mut job_shards = BTreeMap::new();
    for job in jobs {
        job_shards.insert(job.id, job.shards());
        if !job.is_network() {
            job_rates.insert(job.id, f64::INFINITY);
        }
    }
    SteadyState {
        job_rates,
        job_shards,
        link_residual: bw,
        link_flows: vec![0; n_links],
        pat_residual: cluster.racks().iter().map(|r| r.pat_gbps()).collect(),
        num_servers: n_servers,
    }
}

/// Water-fill one resource-connected component in place.
///
/// `members` must be exactly the network jobs of one component, in their
/// global insertion order, and the component's links and PAT pools in
/// `state` must be at virgin capacity with zero flow counts. Everything
/// outside the component is left untouched, which is the invariant the
/// incremental estimator builds on.
pub(crate) fn solve_component(cluster: &Cluster, members: &[&PlacedJob], state: &mut SteadyState) {
    if members.is_empty() {
        return;
    }
    let n_links = cluster.num_links();
    let n_racks = cluster.num_racks();
    let bw = &mut state.link_residual;
    let pat = &mut state.pat_residual;

    struct Active<'a> {
        id: JobId,
        components: &'a [JobHierarchy],
        /// Cached (link index, flow count); refreshed when PAT states flip.
        flows: Vec<(usize, u32)>,
        /// Rack indices this job's components aggregate at while PAT
        /// remains (one entry per component occurrence).
        switches: Vec<usize>,
        ina_enabled: bool,
        rate: f64,
        frozen: bool,
    }
    let mut active: Vec<Active<'_>> = members
        .iter()
        .map(|job| Active {
            id: job.id,
            components: job.components(),
            flows: Vec::new(),
            switches: job
                .components()
                .iter()
                .flat_map(|h| h.switches())
                .map(|r| r.0)
                .collect(),
            ina_enabled: job.components().iter().any(JobHierarchy::ina_enabled),
            rate: 0.0,
            frozen: false,
        })
        .collect();

    // The component's own resource index lists; every per-round scan is
    // restricted to these, so a small component in a big cluster stays
    // cheap even though the state vectors are cluster-sized.
    let mut links: Vec<usize> = Vec::new();
    let mut racks: Vec<usize> = Vec::new();
    for job in members {
        for h in job.components() {
            for (l, _) in h.link_flows(|_| false) {
                links.push(l.index(cluster));
            }
        }
    }
    for a in &active {
        if a.ina_enabled {
            racks.extend(a.switches.iter().copied());
        }
    }
    links.sort_unstable();
    links.dedup();
    racks.sort_unstable();
    racks.dedup();

    let mut unfrozen = active.len();
    let mut flows_stale = true;
    // Round bound with headroom; the loop always exits earlier because
    // every round saturates a link or exhausts a PAT pool.
    let max_rounds = 2 * (links.len() + racks.len()) + 8;
    let mut link_flows_total = vec![0u64; n_links];
    let mut rack_jobs = vec![0u32; n_racks];
    let mut pat_was_live = vec![false; n_racks];

    for _ in 0..max_rounds {
        if unfrozen == 0 {
            break;
        }
        // UpdateFlows: recompute per-job link flows under the current
        // PAT-residual predicate (only needed after a PAT flip).
        if flows_stale {
            for a in active.iter_mut().filter(|a| !a.frozen) {
                let agg = |r: RackId| pat[r.0] > EPSILON_GBPS;
                a.flows.clear();
                for h in a.components {
                    for (l, f) in h.link_flows(agg) {
                        let idx = l.index(cluster);
                        match a.flows.iter_mut().find(|(i, _)| *i == idx) {
                            Some(e) => e.1 += f,
                            None => a.flows.push((idx, f)),
                        }
                    }
                }
            }
            flows_stale = false;
        }

        // Count flows per link and aggregating jobs per rack.
        for &l in &links {
            link_flows_total[l] = 0;
        }
        for &r in &racks {
            rack_jobs[r] = 0;
        }
        for a in active.iter().filter(|a| !a.frozen) {
            for &(l, f) in &a.flows {
                link_flows_total[l] += u64::from(f);
            }
            if a.ina_enabled {
                for &r in &a.switches {
                    if pat[r] > EPSILON_GBPS {
                        rack_jobs[r] += 1;
                    }
                }
            }
        }

        // Minimum per-flow share across loaded links and switches.
        let mut delta = f64::INFINITY;
        for &l in &links {
            if link_flows_total[l] > 0 {
                delta = delta.min((bw[l].max(0.0)) / link_flows_total[l] as f64);
            }
        }
        for &r in &racks {
            if rack_jobs[r] > 0 {
                delta = delta.min((pat[r].max(0.0)) / f64::from(rack_jobs[r]));
            }
        }
        if !delta.is_finite() {
            // No unfrozen job touches any link: freeze them all at their
            // current rate (degenerate but defensively handled).
            for a in active.iter_mut().filter(|a| !a.frozen) {
                a.frozen = true;
            }
            unfrozen = 0;
            break;
        }

        // Augment: raise every active job by delta, drain links and PAT.
        for &r in &racks {
            pat_was_live[r] = pat[r] > EPSILON_GBPS;
        }
        for a in active.iter_mut().filter(|a| !a.frozen) {
            a.rate += delta;
            for &(l, f) in &a.flows {
                bw[l] -= delta * f64::from(f);
            }
            if a.ina_enabled {
                for &r in &a.switches {
                    if pat[r] > EPSILON_GBPS {
                        pat[r] -= delta;
                    }
                }
            }
        }
        // Pin near-zero residuals and detect PAT flips.
        for &r in &racks {
            if pat_was_live[r] && pat[r] <= EPSILON_GBPS {
                pat[r] = 0.0;
                flows_stale = true;
            }
        }
        let mut any_link_saturated = false;
        for &l in &links {
            if link_flows_total[l] > 0 && bw[l] <= EPSILON_GBPS {
                bw[l] = bw[l].max(0.0);
                any_link_saturated = true;
            }
        }
        // Freeze jobs crossing a saturated link.
        if any_link_saturated {
            for a in active.iter_mut().filter(|a| !a.frozen) {
                if a.flows
                    .iter()
                    .any(|&(l, f)| f > 0 && bw[l] <= EPSILON_GBPS)
                {
                    a.frozen = true;
                    unfrozen -= 1;
                }
            }
        }
    }
    debug_assert_eq!(unfrozen, 0, "water-filling failed to converge");

    // Converged flow counts including frozen jobs, under the final PAT view
    // (a job's own switches are all inside its component, so the component
    // view and the global view agree), and residual clamping.
    let agg = |r: RackId| pat[r.0] > EPSILON_GBPS;
    for a in &active {
        state.job_rates.insert(a.id, a.rate);
        for h in a.components {
            for (l, f) in h.link_flows(agg) {
                state.link_flows[l.index(cluster)] += f;
            }
        }
    }
    for &l in &links {
        bw[l] = bw[l].max(0.0);
    }
}

/// Group the network jobs of `jobs` into resource-connected components.
///
/// Returns one `Vec` of job indices per component, each in insertion order,
/// with the components ordered by their first member. Local jobs appear in
/// no component.
pub(crate) fn partition_components(cluster: &Cluster, jobs: &[PlacedJob]) -> Vec<Vec<usize>> {
    let n_nodes = cluster.num_links() + cluster.num_racks();
    let mut dsu = Dsu::new(n_nodes);
    let mut job_first_node: Vec<Option<usize>> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let nodes = job.resource_nodes(cluster);
        for w in nodes.windows(2) {
            dsu.union(w[0], w[1]);
        }
        job_first_node.push(nodes.first().copied());
    }
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut root_of: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, first) in job_first_node.iter().enumerate() {
        let Some(first) = *first else { continue };
        let root = dsu.find(first);
        match root_of.get(&root) {
            Some(&g) => groups[g].1.push(i),
            None => {
                root_of.insert(root, groups.len());
                groups.push((root, vec![i]));
            }
        }
    }
    groups.into_iter().map(|(_, g)| g).collect()
}

/// Run Algorithm 1: estimate the max-min steady state of `jobs` in
/// `cluster`, jointly filling link bandwidth and switch PAT.
///
/// Local jobs converge instantly (infinite rate). Network jobs are
/// partitioned into resource-connected components (jobs interact only
/// through shared links or shared, INA-active PAT pools) and each component
/// is water-filled independently; within a component the algorithm
/// terminates after at most `|links| + |racks|` filling rounds because
/// every round saturates at least one link (freezing its jobs) or exhausts
/// at least one switch's PAT (fanning out its flows).
///
/// # Example
///
/// See the crate-level example.
pub fn estimate(cluster: &Cluster, jobs: &[PlacedJob]) -> SteadyState {
    let mut state = empty_state(cluster, jobs);
    for group in partition_components(cluster, jobs) {
        let members: Vec<&PlacedJob> = group.iter().map(|&i| &jobs[i]).collect();
        solve_component(cluster, &members, &mut state);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::{ClusterSpec, LinkId, ServerId};

    fn cluster(racks: usize, servers_per_rack: usize, pat: f64) -> Cluster {
        Cluster::new(ClusterSpec {
            racks,
            servers_per_rack,
            gpus_per_server: 4,
            server_link_gbps: 100.0,
            pat_gbps: pat,
            oversubscription: 1.0,
            rtt_us: 50.0,
            racks_per_pod: None,
        })
    }

    fn job(id: u64, c: &Cluster, workers: Vec<(usize, usize)>, ps: usize) -> PlacedJob {
        let p = Placement::new(
            workers.into_iter().map(|(s, w)| (ServerId(s), w)).collect(),
            Some(ServerId(ps)),
        );
        PlacedJob::new(JobId(id), c, &p)
    }

    #[test]
    fn lone_fully_aggregated_job_fills_its_bottleneck_link() {
        let c = cluster(1, 3, 10_000.0);
        // 2 workers on servers 0 and 1, PS on 2. Full aggregation: every
        // link carries one "rate" per worker / one aggregated stream.
        let jobs = [job(0, &c, vec![(0, 2), (1, 2)], 2)];
        let s = estimate(&c, &jobs);
        // Worker links carry 2 flows each: bottleneck 100/2 = 50.
        let rate = s.job_rate_gbps(JobId(0)).unwrap();
        assert!((rate - 50.0).abs() < 1e-6, "rate {rate}");
        assert_eq!(s.server_available_gbps(ServerId(0)), 0.0);
        // PS link carried one aggregated stream at 50.
        assert!((s.server_available_gbps(ServerId(2)) - 50.0).abs() < 1e-6);
    }

    #[test]
    fn two_jobs_share_a_common_ps_link_max_min_fairly() {
        let c = cluster(1, 5, 10_000.0);
        // Both jobs place their PS on server 4.
        let jobs = [
            job(0, &c, vec![(0, 1), (1, 1)], 4),
            job(1, &c, vec![(2, 1), (3, 1)], 4),
        ];
        let s = estimate(&c, &jobs);
        let r0 = s.job_rate_gbps(JobId(0)).unwrap();
        let r1 = s.job_rate_gbps(JobId(1)).unwrap();
        assert!((r0 - r1).abs() < 1e-6);
        // PS link: 2 aggregated streams sharing 100 Gbps => 50 each.
        assert!((r0 - 50.0).abs() < 1e-6, "rate {r0}");
        assert_eq!(s.server_available_gbps(ServerId(4)), 0.0);
    }

    #[test]
    fn pat_exhaustion_fans_out_flows_and_lowers_rates() {
        // Single-rack: 2 workers on distinct servers, PS alone; PAT tiny.
        let c = cluster(1, 3, 10.0);
        let jobs = [job(0, &c, vec![(0, 1), (1, 1)], 2)];
        let s = estimate(&c, &jobs);
        let rate = s.job_rate_gbps(JobId(0)).unwrap();
        // Phase 1: aggregated (1 flow on PS link) until PAT=10 exhausts at
        // rate 10. Phase 2: 2 unaggregated flows on the PS link; residual
        // 90 Gbps shared by 2 flows => +45 => rate 55. Worker links hold
        // one flow each (rate <= 100) so the PS link is the bottleneck.
        assert!((rate - 55.0).abs() < 1e-6, "rate {rate}");
        assert!(!s.rack_aggregating(RackId(0)));
        assert_eq!(s.link_flows(LinkId::ServerAccess(ServerId(2)), &c), 2);
    }

    #[test]
    fn pat_is_shared_fairly_between_jobs() {
        // Two identical single-rack jobs, separate PSes; PAT = 40 total.
        let c = cluster(1, 6, 40.0);
        let jobs = [
            job(0, &c, vec![(0, 1), (1, 1)], 2),
            job(1, &c, vec![(3, 1), (4, 1)], 5),
        ];
        let s = estimate(&c, &jobs);
        let r0 = s.job_rate_gbps(JobId(0)).unwrap();
        let r1 = s.job_rate_gbps(JobId(1)).unwrap();
        assert!((r0 - r1).abs() < 1e-6);
        // PAT exhausts at rate 20 each (2 jobs x 20 = 40); then each PS
        // link has 2 flows over the remaining 80 Gbps => +40 => 60.
        assert!((r0 - 60.0).abs() < 1e-6, "rate {r0}");
        assert_eq!(s.pat_residual_gbps(RackId(0)), 0.0);
    }

    #[test]
    fn local_jobs_report_infinite_rate_and_consume_nothing() {
        let c = cluster(1, 2, 1000.0);
        let local = PlacedJob::new(JobId(7), &c, &Placement::local(ServerId(0), 4));
        let s = estimate(&c, &[local]);
        assert_eq!(s.job_rate_gbps(JobId(7)), Some(f64::INFINITY));
        assert_eq!(s.server_available_gbps(ServerId(0)), 100.0);
        assert_eq!(s.num_jobs(), 1);
    }

    #[test]
    fn ina_disabled_job_does_not_draw_pat() {
        let c = cluster(1, 3, 50.0);
        let mut p = Placement::new(vec![(ServerId(0), 1), (ServerId(1), 1)], Some(ServerId(2)));
        p.set_ina_enabled(false);
        let jobs = [PlacedJob::new(JobId(0), &c, &p)];
        let s = estimate(&c, &jobs);
        // 2 unaggregated flows on the PS link from the start: rate 50.
        let rate = s.job_rate_gbps(JobId(0)).unwrap();
        assert!((rate - 50.0).abs() < 1e-6, "rate {rate}");
        assert_eq!(s.pat_residual_gbps(RackId(0)), 50.0);
    }

    #[test]
    fn cross_rack_job_is_limited_by_the_uplink_when_oversubscribed() {
        let spec = ClusterSpec {
            racks: 2,
            servers_per_rack: 2,
            gpus_per_server: 4,
            server_link_gbps: 100.0,
            pat_gbps: 0.0,
            oversubscription: 10.0,
            rtt_us: 50.0,
            racks_per_pod: None,
        };
        spec.validate().unwrap();
        let c = Cluster::new(spec);
        // Uplink capacity = 2*100/10 = 20 Gbps. One worker in each rack,
        // PS in rack 0, no INA (PAT 0).
        let jobs = [job(0, &c, vec![(0, 1), (2, 1)], 1)];
        let s = estimate(&c, &jobs);
        let rate = s.job_rate_gbps(JobId(0)).unwrap();
        // The remote worker's flow crosses both uplinks (1 flow each):
        // bottleneck 20 Gbps.
        assert!((rate - 20.0).abs() < 1e-6, "rate {rate}");
    }

    #[test]
    fn empty_job_set_leaves_cluster_untouched() {
        let c = cluster(2, 2, 100.0);
        let s = estimate(&c, &[]);
        assert_eq!(s.num_jobs(), 0);
        for srv in 0..c.num_servers() {
            assert_eq!(s.server_available_gbps(ServerId(srv)), 100.0);
            assert_eq!(s.server_flows(ServerId(srv)), 0);
        }
    }

    #[test]
    fn asymmetric_jobs_get_max_min_not_equal_shares() {
        let c = cluster(1, 4, 100_000.0);
        // Job 0: PS shares server 3 with job 1's PS; job 0 has 2 workers on
        // server 0 (its worker link has 2 flows -> bottleneck 50); job 1
        // has 1 worker on server 1 and 1 on server 2.
        let jobs = [
            job(0, &c, vec![(0, 2)], 3),
            job(1, &c, vec![(1, 1), (2, 1)], 3),
        ];
        let s = estimate(&c, &jobs);
        let r0 = s.job_rate_gbps(JobId(0)).unwrap();
        let r1 = s.job_rate_gbps(JobId(1)).unwrap();
        // Job 0 freezes at 50 (its own worker link). Job 1 then takes the
        // rest of the PS link: both aggregated streams share 100, job 0
        // holds 50, job 1 gets 50 too... but its own links allow 100, so
        // the PS link is the binding constraint for both at 50.
        assert!((r0 - 50.0).abs() < 1e-6, "r0 {r0}");
        assert!((r1 - 50.0).abs() < 1e-6, "r1 {r1}");

        // Now give job 0 a dedicated PS: job 1 should claim more.
        let jobs = [job(0, &c, vec![(0, 2)], 3), job(1, &c, vec![(1, 1)], 2)];
        let s = estimate(&c, &jobs);
        let r0 = s.job_rate_gbps(JobId(0)).unwrap();
        let r1 = s.job_rate_gbps(JobId(1)).unwrap();
        assert!((r0 - 50.0).abs() < 1e-6, "r0 {r0}");
        assert!((r1 - 100.0).abs() < 1e-6, "r1 {r1}");
    }

    #[test]
    fn residuals_are_never_negative() {
        let c = cluster(2, 4, 30.0);
        let jobs = [
            job(0, &c, vec![(0, 2), (4, 2)], 1),
            job(1, &c, vec![(2, 1), (5, 1)], 6),
            job(2, &c, vec![(3, 4)], 7),
        ];
        let s = estimate(&c, &jobs);
        for l in 0..c.num_links() {
            let link = LinkId::from_index(l, &c);
            assert!(
                s.link_residual_gbps(link, &c) >= 0.0,
                "negative residual on {link}"
            );
        }
        for r in 0..c.num_racks() {
            assert!(s.pat_residual_gbps(RackId(r)) >= 0.0);
        }
    }

    #[test]
    fn every_network_job_is_bottlenecked_by_a_saturated_link() {
        let c = cluster(2, 4, 500.0);
        let jobs = [
            job(0, &c, vec![(0, 2), (4, 2)], 1),
            job(1, &c, vec![(2, 1), (5, 1)], 6),
        ];
        let s = estimate(&c, &jobs);
        for pj in &jobs {
            let h = pj.hierarchy().unwrap();
            let agg = |r: RackId| s.rack_aggregating(r);
            let saturated = h.link_flows(agg).iter().any(|&(l, f)| {
                f > 0 && s.link_residual_gbps(l, &c) <= 1e-6
            });
            assert!(saturated, "job {} not bottlenecked", pj.id());
        }
    }

    #[test]
    fn disjoint_jobs_form_separate_components() {
        // Two jobs in different racks, never sharing a link; PAT on, but
        // each aggregates only at its own rack's switch.
        let c = cluster(2, 3, 500.0);
        let jobs = [
            job(0, &c, vec![(0, 1), (1, 1)], 2),
            job(1, &c, vec![(3, 1), (4, 1)], 5),
        ];
        let comps = partition_components(&c, &jobs);
        assert_eq!(comps, vec![vec![0], vec![1]]);
        // A shared PS server merges them.
        let jobs = [
            job(0, &c, vec![(0, 1), (1, 1)], 2),
            job(1, &c, vec![(3, 1), (4, 1)], 2),
        ];
        let comps = partition_components(&c, &jobs);
        assert_eq!(comps, vec![vec![0, 1]]);
    }

    #[test]
    fn pat_pool_couples_jobs_without_shared_links() {
        // Same rack, disjoint servers: jobs interact only through the
        // rack's PAT pool, and only while both are INA-enabled.
        let c = cluster(1, 6, 40.0);
        let ina = [
            job(0, &c, vec![(0, 1), (1, 1)], 2),
            job(1, &c, vec![(3, 1), (4, 1)], 5),
        ];
        assert_eq!(partition_components(&c, &ina), vec![vec![0, 1]]);

        let mut p = Placement::new(vec![(ServerId(0), 1), (ServerId(1), 1)], Some(ServerId(2)));
        p.set_ina_enabled(false);
        let mut q = Placement::new(vec![(ServerId(3), 1), (ServerId(4), 1)], Some(ServerId(5)));
        q.set_ina_enabled(false);
        let off = [
            PlacedJob::new(JobId(0), &c, &p),
            PlacedJob::new(JobId(1), &c, &q),
        ];
        assert_eq!(partition_components(&c, &off), vec![vec![0], vec![1]]);
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;
    use netpack_topology::{ClusterSpec, ServerId};

    #[test]
    fn sharding_relieves_a_ps_link_bottleneck() {
        // 8 workers on two servers, PS-side the bottleneck. With one PS the
        // aggregated stream still shares the PS access link with nothing,
        // so disable INA to expose the fan-in bottleneck.
        let c = Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 4,
            gpus_per_server: 4,
            pat_gbps: 0.0,
            ..ClusterSpec::paper_default()
        });
        let mut single = Placement::new(
            vec![(ServerId(0), 4), (ServerId(1), 4)],
            Some(ServerId(2)),
        );
        single.set_ina_enabled(false);
        let s1 = estimate(&c, &[PlacedJob::new(JobId(0), &c, &single)]);
        let r1 = s1.job_rate_gbps(JobId(0)).unwrap();
        // 8 unaggregated flows into one 100 Gbps PS link: 12.5 Gbps each.
        assert!((r1 - 12.5).abs() < 1e-6, "single-PS rate {r1}");
        assert!((s1.comm_time_s(JobId(0), 10.0).unwrap() - 10.0 / 12.5).abs() < 1e-9);

        let mut sharded = Placement::new_sharded(
            vec![(ServerId(0), 4), (ServerId(1), 4)],
            vec![ServerId(2), ServerId(3)],
        );
        sharded.set_ina_enabled(false);
        let job = PlacedJob::new(JobId(1), &c, &sharded);
        assert_eq!(job.components().len(), 2);
        assert_eq!(job.shards(), 2);
        let s2 = estimate(&c, &[job]);
        let r2 = s2.job_rate_gbps(JobId(1)).unwrap();
        // Each worker now runs 2 shard flows (one per PS): worker links
        // carry 8 flows (4 workers x 2 shards) and each PS link carries 8.
        // Bottleneck per shard flow: 100/8 = 12.5, but the gradient is
        // halved per shard, so communication time halves.
        assert!((r2 - 12.5).abs() < 1e-6, "sharded per-shard rate {r2}");
        let t1 = s1.comm_time_s(JobId(0), 10.0).unwrap();
        let t2 = s2.comm_time_s(JobId(1), 10.0).unwrap();
        assert!(
            (t2 - t1 / 2.0).abs() < 1e-9,
            "sharding must halve comm time: {t1} vs {t2}"
        );
    }

    #[test]
    fn shard_count_survives_into_the_steady_state() {
        let c = Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        });
        let sharded = Placement::new_sharded(
            vec![(ServerId(0), 2), (ServerId(1), 2)],
            vec![ServerId(2), ServerId(3)],
        );
        let s = estimate(&c, &[PlacedJob::new(JobId(0), &c, &sharded)]);
        assert_eq!(s.job_shards(JobId(0)), Some(2));
        let local = PlacedJob::new(JobId(1), &c, &Placement::local(ServerId(0), 2));
        let s = estimate(&c, &[local]);
        assert_eq!(s.job_shards(JobId(1)), Some(1));
        assert_eq!(s.comm_time_s(JobId(1), 5.0), Some(0.0));
    }
}
