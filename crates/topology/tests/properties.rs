//! Property tests for cluster construction and the GPU ledger.

use netpack_topology::{Cluster, ClusterSpec, LinkId, ServerId};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = ClusterSpec> {
    (1usize..8, 1usize..12, 1usize..9, 1u32..21, 1u32..11, 0usize..4).prop_map(
        |(racks, spr, gps, oversub, pat, rpp)| ClusterSpec {
            racks,
            servers_per_rack: spr,
            gpus_per_server: gps,
            server_link_gbps: 100.0,
            pat_gbps: pat as f64 * 100.0,
            oversubscription: oversub as f64,
            rtt_us: 50.0,
            racks_per_pod: (rpp > 0).then_some(rpp),
        },
    )
}

proptest! {
    /// Construction lays out dense ids, consistent rack membership, and
    /// consistent totals for any valid spec.
    #[test]
    fn construction_invariants(spec in arb_spec()) {
        let c = Cluster::new(spec.clone());
        prop_assert_eq!(c.num_servers(), spec.num_servers());
        prop_assert_eq!(c.total_gpus(), spec.total_gpus());
        prop_assert_eq!(c.free_gpus(), c.total_gpus());
        prop_assert_eq!(c.num_links(), c.num_servers() + c.num_racks());
        for (i, s) in c.servers().iter().enumerate() {
            prop_assert_eq!(s.id(), ServerId(i));
            prop_assert_eq!(c.rack_of(s.id()), s.rack());
            // The rack's server list contains this server.
            let rack = c.rack(s.rack()).unwrap();
            prop_assert!(rack.server_ids().any(|id| id == s.id()));
        }
        let mut covered = 0;
        for rack in c.racks() {
            covered += rack.num_servers();
            prop_assert!((rack.uplink_gbps() - spec.rack_uplink_gbps()).abs() < 1e-9);
        }
        prop_assert_eq!(covered, c.num_servers());
        // Pod ranges partition both index spaces contiguously.
        let mut covered_racks = 0;
        let mut covered_servers = 0;
        for p in 0..c.num_pods() {
            let rr = c.pod_rack_range(p);
            prop_assert_eq!(rr.start, covered_racks);
            covered_racks = rr.end;
            let sr = c.pod_server_range(p);
            prop_assert_eq!(sr.start, covered_servers);
            covered_servers = sr.end;
            for r in rr {
                prop_assert_eq!(c.pod_of_rack(netpack_topology::RackId(r)), p);
            }
        }
        prop_assert_eq!(covered_racks, c.num_racks());
        prop_assert_eq!(covered_servers, c.num_servers());
    }

    /// Link indexing is a bijection over [0, num_links).
    #[test]
    fn link_index_bijection(spec in arb_spec()) {
        let c = Cluster::new(spec);
        let mut seen = vec![false; c.num_links()];
        for i in 0..c.num_links() {
            let link = LinkId::from_index(i, &c);
            let j = link.index(&c);
            prop_assert_eq!(i, j);
            prop_assert!(!seen[j]);
            seen[j] = true;
        }
    }

    /// Any sequence of allocations and releases keeps the ledger within
    /// bounds, and errors leave it untouched.
    #[test]
    fn ledger_is_conserved(
        spec in arb_spec(),
        ops in proptest::collection::vec((0usize..64, 0usize..12, any::<bool>()), 1..64),
    ) {
        let mut c = Cluster::new(spec);
        let total = c.total_gpus();
        let mut allocated = vec![0usize; c.num_servers()];
        for (srv, count, is_alloc) in ops {
            let server = ServerId(srv % c.num_servers());
            let before = c.free_gpus();
            if is_alloc {
                match c.allocate_gpus(server, count) {
                    Ok(()) => allocated[server.0] += count,
                    Err(_) => prop_assert_eq!(c.free_gpus(), before),
                }
            } else {
                match c.release_gpus(server, count) {
                    Ok(()) => allocated[server.0] -= count,
                    Err(_) => prop_assert_eq!(c.free_gpus(), before),
                }
            }
            let used: usize = allocated.iter().sum();
            prop_assert_eq!(c.free_gpus(), total - used);
        }
    }
}
