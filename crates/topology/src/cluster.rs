//! The cluster object: static configuration plus the GPU allocation ledger.

use crate::{ClusterSpec, RackId, ServerId, TopologyError};

/// One GPU server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Server {
    id: ServerId,
    rack: RackId,
    gpus_total: usize,
    gpus_free: usize,
}

impl Server {
    /// This server's identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The rack (and ToR switch) this server is attached to.
    pub fn rack(&self) -> RackId {
        self.rack
    }

    /// Number of GPUs installed in this server.
    pub fn gpus_total(&self) -> usize {
        self.gpus_total
    }

    /// Number of GPUs currently unallocated.
    pub fn gpus_free(&self) -> usize {
        self.gpus_free
    }

    /// Number of GPUs currently allocated to jobs.
    pub fn gpus_used(&self) -> usize {
        self.gpus_total - self.gpus_free
    }
}

/// One rack: a ToR switch plus a contiguous range of servers.
#[derive(Debug, Clone, PartialEq)]
pub struct Rack {
    id: RackId,
    first_server: usize,
    servers: usize,
    pat_gbps: f64,
    uplink_gbps: f64,
}

impl Rack {
    /// This rack's identifier.
    pub fn id(&self) -> RackId {
        self.id
    }

    /// Identifiers of the servers in this rack, in ascending order.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> + '_ {
        (self.first_server..self.first_server + self.servers).map(ServerId)
    }

    /// Number of servers in this rack.
    pub fn num_servers(&self) -> usize {
        self.servers
    }

    /// Peak Aggregation Throughput of this rack's ToR switch, in Gbps.
    pub fn pat_gbps(&self) -> f64 {
        self.pat_gbps
    }

    /// Capacity of this rack's uplink to the core, in Gbps.
    pub fn uplink_gbps(&self) -> f64 {
        self.uplink_gbps
    }
}

/// A GPU cluster with statistical-INA ToR switches.
///
/// `Cluster` is the single source of truth for static network configuration
/// (the paper's "network information base", Fig. 4 step 2) and for the GPU
/// allocation ledger. GPUs are allocated when a job is placed and released
/// when it finishes; per the paper's assumption they are never preempted
/// while a job runs.
///
/// # Example
///
/// ```
/// use netpack_topology::{Cluster, ClusterSpec, ServerId};
///
/// let mut cluster = Cluster::new(ClusterSpec::paper_testbed());
/// cluster.allocate_gpus(ServerId(0), 2)?;
/// assert_eq!(cluster.server(ServerId(0)).unwrap().gpus_free(), 0);
/// cluster.release_gpus(ServerId(0), 2)?;
/// assert_eq!(cluster.free_gpus(), cluster.total_gpus());
/// # Ok::<(), netpack_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    spec: ClusterSpec,
    servers: Vec<Server>,
    racks: Vec<Rack>,
}

impl Cluster {
    /// Build a cluster from a specification.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`ClusterSpec::validate`]. Use
    /// [`Cluster::try_new`] for a fallible variant.
    pub fn new(spec: ClusterSpec) -> Self {
        // netpack-lint: allow(E1): documented `# Panics` convenience constructor — the fallible path is try_new, and every library call site uses it
        Self::try_new(spec).expect("invalid cluster spec")
    }

    /// Fallible variant of [`Cluster::new`].
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidSpec`] when the specification is
    /// rejected by [`ClusterSpec::validate`].
    pub fn try_new(spec: ClusterSpec) -> Result<Self, TopologyError> {
        spec.validate()?;
        let mut servers = Vec::with_capacity(spec.num_servers());
        let mut racks = Vec::with_capacity(spec.racks);
        for r in 0..spec.racks {
            let first = r * spec.servers_per_rack;
            racks.push(Rack {
                id: RackId(r),
                first_server: first,
                servers: spec.servers_per_rack,
                pat_gbps: spec.pat_gbps,
                uplink_gbps: spec.rack_uplink_gbps(),
            });
            for s in 0..spec.servers_per_rack {
                servers.push(Server {
                    id: ServerId(first + s),
                    rack: RackId(r),
                    gpus_total: spec.gpus_per_server,
                    gpus_free: spec.gpus_per_server,
                });
            }
        }
        Ok(Cluster {
            spec,
            servers,
            racks,
        })
    }

    /// The static specification this cluster was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// All servers, indexed by [`ServerId`].
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// All racks, indexed by [`RackId`].
    pub fn racks(&self) -> &[Rack] {
        &self.racks
    }

    /// Look up a server.
    pub fn server(&self, id: ServerId) -> Option<&Server> {
        self.servers.get(id.0)
    }

    /// Look up a rack.
    pub fn rack(&self, id: RackId) -> Option<&Rack> {
        self.racks.get(id.0)
    }

    /// The rack a server belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `server` is not part of this cluster.
    pub fn rack_of(&self, server: ServerId) -> RackId {
        self.servers[server.0].rack
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.racks.len()
    }

    /// Number of links in the one-big-switch view: one access link per
    /// server plus one uplink per rack.
    pub fn num_links(&self) -> usize {
        self.num_servers() + self.num_racks()
    }

    /// Number of pods (see [`ClusterSpec::racks_per_pod`]); 1 when the
    /// spec declares no pod structure.
    pub fn num_pods(&self) -> usize {
        self.spec.num_pods()
    }

    /// The pod a rack belongs to. Racks are numbered pod-major, so this is
    /// a plain division; clusters without pod structure report pod 0 for
    /// every rack.
    pub fn pod_of_rack(&self, rack: RackId) -> usize {
        match self.spec.racks_per_pod {
            Some(rpp) if rpp > 0 => rack.0 / rpp,
            _ => 0,
        }
    }

    /// The half-open range of rack indices owned by pod `pod` (clamped to
    /// the rack count for a ragged final pod; empty when out of range).
    pub fn pod_rack_range(&self, pod: usize) -> std::ops::Range<usize> {
        let rpp = match self.spec.racks_per_pod {
            Some(rpp) if rpp > 0 => rpp,
            _ => self.racks.len(),
        };
        let start = (pod * rpp).min(self.racks.len());
        let end = ((pod + 1) * rpp).min(self.racks.len());
        start..end
    }

    /// The half-open range of server indices owned by pod `pod`. Servers
    /// are rack-major and racks pod-major, so every pod owns a contiguous
    /// server range — the invariant the pod-sharded candidate search relies
    /// on (`DESIGN.md` §3.11).
    pub fn pod_server_range(&self, pod: usize) -> std::ops::Range<usize> {
        let racks = self.pod_rack_range(pod);
        let start = racks.start * self.spec.servers_per_rack;
        let end = racks.end * self.spec.servers_per_rack;
        start..end
    }

    /// Total GPUs installed.
    pub fn total_gpus(&self) -> usize {
        self.servers.iter().map(Server::gpus_total).sum()
    }

    /// Total GPUs currently free.
    pub fn free_gpus(&self) -> usize {
        self.servers.iter().map(Server::gpus_free).sum()
    }

    /// Allocate `count` GPUs on `server`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownServer`] for an out-of-range server
    /// and [`TopologyError::InsufficientGpus`] when fewer than `count` GPUs
    /// are free. On error the ledger is unchanged.
    pub fn allocate_gpus(&mut self, server: ServerId, count: usize) -> Result<(), TopologyError> {
        let srv = self
            .servers
            .get_mut(server.0)
            .ok_or(TopologyError::UnknownServer(server))?;
        if srv.gpus_free < count {
            return Err(TopologyError::InsufficientGpus {
                server,
                requested: count,
                available: srv.gpus_free,
            });
        }
        srv.gpus_free -= count;
        Ok(())
    }

    /// Release `count` GPUs on `server`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownServer`] for an out-of-range server
    /// and [`TopologyError::ReleaseOverflow`] when the release exceeds the
    /// currently-allocated count. On error the ledger is unchanged.
    pub fn release_gpus(&mut self, server: ServerId, count: usize) -> Result<(), TopologyError> {
        let srv = self
            .servers
            .get_mut(server.0)
            .ok_or(TopologyError::UnknownServer(server))?;
        if srv.gpus_free + count > srv.gpus_total {
            return Err(TopologyError::ReleaseOverflow {
                server,
                released: count,
                allocated: srv.gpus_total - srv.gpus_free,
            });
        }
        srv.gpus_free += count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 2,
            servers_per_rack: 3,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    #[test]
    fn construction_lays_out_dense_ids() {
        let c = small();
        assert_eq!(c.num_servers(), 6);
        assert_eq!(c.num_racks(), 2);
        assert_eq!(c.num_links(), 8);
        for (i, s) in c.servers().iter().enumerate() {
            assert_eq!(s.id(), ServerId(i));
        }
        assert_eq!(c.rack_of(ServerId(0)), RackId(0));
        assert_eq!(c.rack_of(ServerId(3)), RackId(1));
        let rack1: Vec<_> = c.rack(RackId(1)).unwrap().server_ids().collect();
        assert_eq!(rack1, vec![ServerId(3), ServerId(4), ServerId(5)]);
    }

    #[test]
    fn gpu_ledger_allocates_and_releases() {
        let mut c = small();
        assert_eq!(c.free_gpus(), 24);
        c.allocate_gpus(ServerId(1), 3).unwrap();
        assert_eq!(c.server(ServerId(1)).unwrap().gpus_free(), 1);
        assert_eq!(c.server(ServerId(1)).unwrap().gpus_used(), 3);
        assert_eq!(c.free_gpus(), 21);
        c.release_gpus(ServerId(1), 3).unwrap();
        assert_eq!(c.free_gpus(), 24);
    }

    #[test]
    fn over_allocation_is_rejected_and_leaves_ledger_unchanged() {
        let mut c = small();
        let err = c.allocate_gpus(ServerId(0), 5).unwrap_err();
        assert_eq!(
            err,
            TopologyError::InsufficientGpus {
                server: ServerId(0),
                requested: 5,
                available: 4
            }
        );
        assert_eq!(c.free_gpus(), 24);
    }

    #[test]
    fn over_release_is_rejected() {
        let mut c = small();
        c.allocate_gpus(ServerId(0), 2).unwrap();
        let err = c.release_gpus(ServerId(0), 3).unwrap_err();
        assert_eq!(
            err,
            TopologyError::ReleaseOverflow {
                server: ServerId(0),
                released: 3,
                allocated: 2
            }
        );
    }

    #[test]
    fn unknown_server_is_rejected() {
        let mut c = small();
        assert_eq!(
            c.allocate_gpus(ServerId(99), 1).unwrap_err(),
            TopologyError::UnknownServer(ServerId(99))
        );
        assert_eq!(
            c.release_gpus(ServerId(99), 1).unwrap_err(),
            TopologyError::UnknownServer(ServerId(99))
        );
    }

    #[test]
    fn try_new_rejects_invalid_spec() {
        let spec = ClusterSpec {
            racks: 0,
            ..ClusterSpec::paper_default()
        };
        assert!(Cluster::try_new(spec).is_err());
    }

    #[test]
    fn pod_ranges_cover_racks_and_servers_contiguously() {
        // 5 racks of 2 servers, 2 racks per pod => pods {0,1}, {2,3}, {4}.
        let c = Cluster::new(ClusterSpec {
            racks: 5,
            servers_per_rack: 2,
            racks_per_pod: Some(2),
            ..ClusterSpec::paper_default()
        });
        assert_eq!(c.num_pods(), 3);
        assert_eq!(c.pod_rack_range(0), 0..2);
        assert_eq!(c.pod_rack_range(2), 4..5, "final pod is ragged");
        assert_eq!(c.pod_rack_range(3), 5..5, "out of range is empty");
        assert_eq!(c.pod_server_range(1), 4..8);
        assert_eq!(c.pod_of_rack(RackId(3)), 1);
        assert_eq!(c.pod_of_rack(RackId(4)), 2);
        // Ranges partition the index spaces.
        let racks: usize = (0..c.num_pods()).map(|p| c.pod_rack_range(p).len()).sum();
        let servers: usize = (0..c.num_pods())
            .map(|p| c.pod_server_range(p).len())
            .sum();
        assert_eq!(racks, c.num_racks());
        assert_eq!(servers, c.num_servers());
    }

    #[test]
    fn podless_cluster_is_one_pod() {
        let c = small();
        assert_eq!(c.num_pods(), 1);
        assert_eq!(c.pod_of_rack(RackId(1)), 0);
        assert_eq!(c.pod_rack_range(0), 0..2);
        assert_eq!(c.pod_server_range(0), 0..6);
    }

    #[test]
    fn rack_carries_pat_and_uplink() {
        let c = small();
        let rack = c.rack(RackId(0)).unwrap();
        assert_eq!(rack.pat_gbps(), c.spec().pat_gbps);
        assert_eq!(rack.uplink_gbps(), c.spec().rack_uplink_gbps());
        assert_eq!(rack.num_servers(), 3);
    }
}
