//! Explicit three-tier fat-trees, compiled to the one-big-switch view.
//!
//! The paper's estimation and placement algorithms run on the
//! "one-big-switch" abstraction (§4.1): every rack hangs off a single
//! core with one uplink. Real clusters are three-tier fat-trees — racks
//! join a pod's aggregation layer, pods join the core. This module makes
//! the abstraction's soundness explicit: [`FatTreeSpec::compile`] lowers a
//! fat-tree to a [`Cluster`] whose per-rack uplink is the rack's
//! **guaranteed worst-case share** of its pod's capacity,
//!
//! ```text
//! effective_uplink = min(rack_to_agg, pod_to_core / racks_per_pod)
//! ```
//!
//! so any steady state the estimator admits is feasible on the real
//! fat-tree even when every rack in a pod transmits at once (the
//! simultaneous-saturation worst case). When pods are under-loaded the
//! real network has headroom the abstraction ignores, i.e. the compiled
//! view is *conservative*, never optimistic — the safe direction for a
//! placement controller.

use crate::{Cluster, ClusterSpec, RackId, TopologyError};

/// A three-tier fat-tree: pods of racks, an aggregation layer per pod, and
/// a core layer joining the pods.
#[derive(Debug, Clone, PartialEq)]
pub struct FatTreeSpec {
    /// Number of pods.
    pub pods: usize,
    /// Racks (ToR switches) per pod.
    pub racks_per_pod: usize,
    /// Servers per rack.
    pub servers_per_rack: usize,
    /// GPUs per server.
    pub gpus_per_server: usize,
    /// Capacity of each server's access link, in Gbps.
    pub server_link_gbps: f64,
    /// Total capacity from one ToR into its pod's aggregation layer
    /// (sum over the ToR's agg-facing ports), in Gbps.
    pub rack_to_agg_gbps: f64,
    /// Total capacity from one pod's aggregation layer into the core, in
    /// Gbps.
    pub pod_to_core_gbps: f64,
    /// Peak Aggregation Throughput of each ToR switch, in Gbps.
    pub pat_gbps: f64,
    /// Worker-PS round-trip time, in microseconds.
    pub rtt_us: f64,
}

impl FatTreeSpec {
    /// A k=4-flavoured default sized like the paper's simulated cluster:
    /// 4 pods × 4 racks × 16 servers, full rack bandwidth into the pod and
    /// 2:1 pod-to-core oversubscription.
    pub fn paper_like() -> Self {
        FatTreeSpec {
            pods: 4,
            racks_per_pod: 4,
            servers_per_rack: 16,
            gpus_per_server: 4,
            server_link_gbps: 100.0,
            rack_to_agg_gbps: 1600.0,
            pod_to_core_gbps: 3200.0,
            pat_gbps: 1000.0,
            rtt_us: 50.0,
        }
    }

    /// Total racks.
    pub fn racks(&self) -> usize {
        self.pods * self.racks_per_pod
    }

    /// The pod a rack belongs to (racks are numbered pod-major).
    ///
    /// # Panics
    ///
    /// Panics if the rack index is out of range.
    pub fn pod_of(&self, rack: RackId) -> usize {
        assert!(rack.0 < self.racks(), "rack {rack} out of range");
        rack.0 / self.racks_per_pod
    }

    /// The guaranteed worst-case uplink share of one rack: its own
    /// agg-layer capacity, or an equal split of the pod's core capacity
    /// when every rack in the pod is active — whichever binds first.
    pub fn effective_rack_uplink_gbps(&self) -> f64 {
        self.rack_to_agg_gbps
            .min(self.pod_to_core_gbps / self.racks_per_pod as f64)
    }

    /// The oversubscription ratio the compiled one-big-switch view
    /// carries: full rack bandwidth over the effective uplink.
    pub fn effective_oversubscription(&self) -> f64 {
        let full = self.servers_per_rack as f64 * self.server_link_gbps;
        (full / self.effective_rack_uplink_gbps()).max(1.0)
    }

    /// The equivalent one-big-switch specification.
    pub fn to_cluster_spec(&self) -> ClusterSpec {
        ClusterSpec {
            racks: self.racks(),
            servers_per_rack: self.servers_per_rack,
            gpus_per_server: self.gpus_per_server,
            server_link_gbps: self.server_link_gbps,
            pat_gbps: self.pat_gbps,
            oversubscription: self.effective_oversubscription(),
            rtt_us: self.rtt_us,
            racks_per_pod: Some(self.racks_per_pod),
        }
    }

    /// Compile to a [`Cluster`] under the conservative worst-case uplink.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidSpec`] if any dimension is zero or
    /// any capacity is non-positive.
    pub fn compile(&self) -> Result<Cluster, TopologyError> {
        fn bad(msg: &str) -> Result<Cluster, TopologyError> {
            Err(TopologyError::InvalidSpec(msg.to_string()))
        }
        if self.pods == 0 || self.racks_per_pod == 0 {
            return bad("fat-tree needs at least one pod and one rack per pod");
        }
        if !(self.rack_to_agg_gbps.is_finite() && self.rack_to_agg_gbps > 0.0) {
            return bad("rack_to_agg_gbps must be positive and finite");
        }
        if !(self.pod_to_core_gbps.is_finite() && self.pod_to_core_gbps > 0.0) {
            return bad("pod_to_core_gbps must be positive and finite");
        }
        Cluster::try_new(self.to_cluster_spec())
    }

    /// Worst-case feasibility certificate for the compiled view: if every
    /// rack in every pod pushes its full effective uplink simultaneously,
    /// neither layer of the real fat-tree is exceeded. This is the
    /// inequality that makes the abstraction conservative.
    pub fn simultaneous_saturation_is_feasible(&self) -> bool {
        let eff = self.effective_rack_uplink_gbps();
        eff <= self.rack_to_agg_gbps + 1e-9
            && self.racks_per_pod as f64 * eff <= self.pod_to_core_gbps + 1e-9
    }
}

impl Default for FatTreeSpec {
    fn default() -> Self {
        Self::paper_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_like_compiles_to_the_expected_shape() {
        let ft = FatTreeSpec::paper_like();
        let cluster = ft.compile().unwrap();
        assert_eq!(cluster.num_racks(), 16);
        assert_eq!(cluster.num_servers(), 256);
        // Effective uplink: min(1600, 3200/4) = 800 Gbps => oversub 2:1.
        assert!((ft.effective_rack_uplink_gbps() - 800.0).abs() < 1e-9);
        assert!((ft.effective_oversubscription() - 2.0).abs() < 1e-9);
        assert!((cluster.racks()[0].uplink_gbps() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn agg_layer_can_bind_instead_of_the_core() {
        let ft = FatTreeSpec {
            rack_to_agg_gbps: 400.0,
            pod_to_core_gbps: 10_000.0,
            ..FatTreeSpec::paper_like()
        };
        assert!((ft.effective_rack_uplink_gbps() - 400.0).abs() < 1e-9);
        assert!((ft.effective_oversubscription() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn full_bisection_compiles_to_one_to_one() {
        let ft = FatTreeSpec {
            rack_to_agg_gbps: 1600.0,
            pod_to_core_gbps: 6400.0,
            ..FatTreeSpec::paper_like()
        };
        assert!((ft.effective_oversubscription() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pod_mapping_is_pod_major() {
        let ft = FatTreeSpec::paper_like();
        assert_eq!(ft.pod_of(RackId(0)), 0);
        assert_eq!(ft.pod_of(RackId(3)), 0);
        assert_eq!(ft.pod_of(RackId(4)), 1);
        assert_eq!(ft.pod_of(RackId(15)), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pod_of_rejects_unknown_racks() {
        let _ = FatTreeSpec::paper_like().pod_of(RackId(16));
    }

    #[test]
    fn worst_case_certificate_holds_by_construction() {
        for (agg, core) in [(1600.0, 3200.0), (400.0, 10_000.0), (100.0, 100.0)] {
            let ft = FatTreeSpec {
                rack_to_agg_gbps: agg,
                pod_to_core_gbps: core,
                ..FatTreeSpec::paper_like()
            };
            assert!(
                ft.simultaneous_saturation_is_feasible(),
                "agg {agg} core {core}"
            );
        }
    }

    #[test]
    fn invalid_fat_trees_are_rejected() {
        for ft in [
            FatTreeSpec {
                pods: 0,
                ..FatTreeSpec::paper_like()
            },
            FatTreeSpec {
                rack_to_agg_gbps: 0.0,
                ..FatTreeSpec::paper_like()
            },
            FatTreeSpec {
                pod_to_core_gbps: f64::NAN,
                ..FatTreeSpec::paper_like()
            },
        ] {
            assert!(ft.compile().is_err());
        }
    }
}
