#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Cluster topology model for NetPack.
//!
//! NetPack (ASPLOS'24) schedules distributed-training jobs onto a Clos/fat-tree
//! GPU cluster whose Top-of-Rack (ToR) switches perform *statistical
//! in-network aggregation* (INA). Following §4.1 of the paper, the data-center
//! core is abstracted as "one big switch": the only links that matter for
//! resource estimation are
//!
//! 1. each server's access link to its ToR switch, and
//! 2. each rack's uplink into the core (whose capacity encodes the
//!    oversubscription ratio).
//!
//! Each ToR switch additionally exposes a *Peak Aggregation Throughput* (PAT)
//! — the switch-memory resource converted into an equivalent aggregation
//! throughput `A = M / RTT` (paper §4.1).
//!
//! This crate owns the **static configuration** (capacities, GPU inventory)
//! and the **GPU allocation ledger**. Transient network state (residual
//! bandwidth, residual PAT) lives in the water-filling estimator, because in
//! statistical INA the network allocation is decentralized and never enforced
//! by the controller.
//!
//! # Example
//!
//! ```
//! use netpack_topology::{ClusterSpec, Cluster};
//!
//! // The paper's default simulated cluster: 16 racks x 16 servers x 4 GPUs.
//! let cluster = Cluster::new(ClusterSpec::paper_default());
//! assert_eq!(cluster.num_servers(), 256);
//! assert_eq!(cluster.total_gpus(), 1024);
//! assert_eq!(cluster.free_gpus(), 1024);
//! ```

mod cluster;
mod error;
mod fattree;
mod flat;
mod ids;
mod link;
mod spec;

pub use cluster::{Cluster, Rack, Server};
pub use error::TopologyError;
pub use fattree::FatTreeSpec;
pub use flat::{FlatTopology, TopoMode};
pub use ids::{JobId, RackId, ServerId};
pub use link::LinkId;
pub use spec::ClusterSpec;
