//! Flat integer-indexed (structure-of-arrays) view of a cluster.
//!
//! The per-entity [`Server`](crate::Server)/[`Rack`](crate::Rack) structs
//! are comfortable at the paper's 256-server scale, but a warehouse-scale
//! placer (50k+ servers, see `ROADMAP.md` item 1) walks the server list
//! hundreds of times per batch; chasing `&Server` references and re-deriving
//! per-rack constants in the hot loop costs both cache lines and branches.
//! [`FlatTopology`] lowers the static side of a [`Cluster`] once into dense
//! parallel vectors indexed by raw ids:
//!
//! | vector               | indexed by | holds                              |
//! |----------------------|------------|------------------------------------|
//! | `server_rack`        | server id  | the owning rack id                 |
//! | `rack_pod`           | rack id    | the owning pod                     |
//! | `rack_first_server`  | rack id    | prefix-sum server offsets          |
//! | `pod_first_rack`     | pod        | prefix-sum rack offsets            |
//! | `link_capacity_gbps` | link index | capacities in [`LinkId`] layout    |
//! | `rack_pat_gbps`      | rack id    | ToR Peak Aggregation Throughput    |
//!
//! Index invariants (checked in tests, relied on by `netpack-placement`):
//!
//! 1. servers are rack-major: rack `r` owns the contiguous server range
//!    `rack_first_server[r] .. rack_first_server[r + 1]`;
//! 2. racks are pod-major: pod `p` owns the contiguous rack range
//!    `pod_first_rack[p] .. pod_first_rack[p + 1]`, hence every pod also
//!    owns a contiguous server range;
//! 3. the link vector uses the [`LinkId::index`] layout — all server access
//!    links first (by server id), then all rack uplinks (by rack id) — the
//!    same layout as the water-filling residual vectors.
//!
//! The view is **read-only static data**: the GPU ledger and all transient
//! network state stay where they were (the `Cluster` and the estimator's
//! `SteadyState`). `DESIGN.md` §3.11 documents how the placement layer uses
//! this view and why the flat path stays bit-identical to the struct path.

use crate::{Cluster, LinkId};

/// Which topology representation the placement hot path walks.
///
/// Both modes produce **bit-identical placements** — the flat path is a
/// representation change plus exactly-equal work-sharding, never a
/// different algorithm (`DESIGN.md` §3.11). `struct` remains as the
/// straight-line reference for the equivalence gate in `scripts/check.sh`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopoMode {
    /// Flat integer-indexed arrays ([`FlatTopology`]) with per-pod sharded
    /// candidate search — the warehouse-scale default.
    #[default]
    Flat,
    /// The original per-entity struct walk; reference implementation.
    Struct,
}

impl TopoMode {
    /// Read the mode from the `NETPACK_TOPO` environment variable:
    /// `struct` selects the reference path, anything else (or unset) the
    /// flat path.
    pub fn from_env() -> Self {
        match std::env::var("NETPACK_TOPO").as_deref() {
            Ok("struct") => TopoMode::Struct,
            _ => TopoMode::Flat,
        }
    }
}

/// Dense structure-of-arrays snapshot of a cluster's static topology.
///
/// Built once per placement batch (O(servers + racks), a few hundred
/// microseconds at 50k servers) and then indexed with plain integers in the
/// hot loops. See the [module docs](self) for the layout and invariants.
///
/// # Example
///
/// ```
/// use netpack_topology::{Cluster, ClusterSpec, FlatTopology, RackId, ServerId};
///
/// let cluster = Cluster::new(ClusterSpec::paper_default());
/// let flat = FlatTopology::new(&cluster);
/// assert_eq!(flat.num_servers(), 256);
/// assert_eq!(flat.rack_of(17), 1);
/// assert_eq!(flat.rack_server_range(1), 16..32);
/// // Without declared pods the whole cluster is one pod.
/// assert_eq!(flat.num_pods(), 1);
/// assert_eq!(flat.pod_server_range(0), 0..256);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlatTopology {
    server_rack: Vec<u32>,
    rack_pod: Vec<u32>,
    rack_first_server: Vec<u32>,
    pod_first_rack: Vec<u32>,
    link_capacity_gbps: Vec<f64>,
    rack_pat_gbps: Vec<f64>,
    gpus_per_server: usize,
}

impl FlatTopology {
    /// Lower `cluster`'s static topology into dense arrays.
    pub fn new(cluster: &Cluster) -> Self {
        let ns = cluster.num_servers();
        let nr = cluster.num_racks();
        let np = cluster.num_pods();

        let mut server_rack = vec![0u32; ns];
        let mut rack_first_server = Vec::with_capacity(nr + 1);
        let mut rack_pat_gbps = Vec::with_capacity(nr);
        let mut link_capacity_gbps = vec![0.0; cluster.num_links()];
        for rack in cluster.racks() {
            rack_first_server.push(rack.server_ids().next().map_or(ns, |s| s.0) as u32);
            rack_pat_gbps.push(rack.pat_gbps());
            link_capacity_gbps[ns + rack.id().0] = rack.uplink_gbps();
            for sid in rack.server_ids() {
                server_rack[sid.0] = rack.id().0 as u32;
                link_capacity_gbps[sid.0] = LinkId::ServerAccess(sid).capacity_gbps(cluster);
            }
        }
        rack_first_server.push(ns as u32);

        let mut rack_pod = vec![0u32; nr];
        let mut pod_first_rack = Vec::with_capacity(np + 1);
        for pod in 0..np {
            let range = cluster.pod_rack_range(pod);
            pod_first_rack.push(range.start as u32);
            for r in range {
                rack_pod[r] = pod as u32;
            }
        }
        pod_first_rack.push(nr as u32);

        FlatTopology {
            server_rack,
            rack_pod,
            rack_first_server,
            pod_first_rack,
            link_capacity_gbps,
            rack_pat_gbps,
            gpus_per_server: cluster.spec().gpus_per_server,
        }
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.server_rack.len()
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.rack_pod.len()
    }

    /// Number of pods.
    pub fn num_pods(&self) -> usize {
        self.pod_first_rack.len() - 1
    }

    /// GPUs installed per server (uniform across the cluster).
    pub fn gpus_per_server(&self) -> usize {
        self.gpus_per_server
    }

    /// The rack owning server `server`.
    pub fn rack_of(&self, server: usize) -> usize {
        self.server_rack[server] as usize
    }

    /// The pod owning rack `rack`.
    pub fn pod_of_rack(&self, rack: usize) -> usize {
        self.rack_pod[rack] as usize
    }

    /// Half-open server-index range of rack `rack`.
    pub fn rack_server_range(&self, rack: usize) -> std::ops::Range<usize> {
        self.rack_first_server[rack] as usize..self.rack_first_server[rack + 1] as usize
    }

    /// Half-open rack-index range of pod `pod`.
    pub fn pod_rack_range(&self, pod: usize) -> std::ops::Range<usize> {
        self.pod_first_rack[pod] as usize..self.pod_first_rack[pod + 1] as usize
    }

    /// Half-open server-index range of pod `pod` (contiguous because racks
    /// are pod-major and servers rack-major).
    pub fn pod_server_range(&self, pod: usize) -> std::ops::Range<usize> {
        let racks = self.pod_rack_range(pod);
        self.rack_first_server[racks.start] as usize..self.rack_first_server[racks.end] as usize
    }

    /// Capacity of server `server`'s access link, in Gbps.
    pub fn server_link_gbps(&self, server: usize) -> f64 {
        self.link_capacity_gbps[server]
    }

    /// Capacity of rack `rack`'s uplink to the core, in Gbps.
    pub fn rack_uplink_gbps(&self, rack: usize) -> f64 {
        self.link_capacity_gbps[self.server_rack.len() + rack]
    }

    /// Peak Aggregation Throughput of rack `rack`'s ToR switch, in Gbps.
    pub fn rack_pat_gbps(&self, rack: usize) -> f64 {
        self.rack_pat_gbps[rack]
    }

    /// All link capacities in the dense [`LinkId::index`] layout: server
    /// access links first (by server id), then rack uplinks (by rack id).
    pub fn link_capacities_gbps(&self) -> &[f64] {
        &self.link_capacity_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSpec, FatTreeSpec, RackId, ServerId};

    #[test]
    fn flat_view_matches_struct_view() {
        let cluster = FatTreeSpec::paper_like().compile().unwrap();
        let flat = FlatTopology::new(&cluster);
        assert_eq!(flat.num_servers(), cluster.num_servers());
        assert_eq!(flat.num_racks(), cluster.num_racks());
        assert_eq!(flat.num_pods(), 4);
        for s in 0..cluster.num_servers() {
            assert_eq!(flat.rack_of(s), cluster.rack_of(ServerId(s)).0);
            assert_eq!(
                flat.server_link_gbps(s),
                LinkId::ServerAccess(ServerId(s)).capacity_gbps(&cluster)
            );
        }
        for r in 0..cluster.num_racks() {
            let rack = cluster.rack(RackId(r)).unwrap();
            assert_eq!(flat.rack_uplink_gbps(r), rack.uplink_gbps());
            assert_eq!(flat.rack_pat_gbps(r), rack.pat_gbps());
            assert_eq!(flat.pod_of_rack(r), cluster.pod_of_rack(RackId(r)));
            let range = flat.rack_server_range(r);
            let ids: Vec<usize> = rack.server_ids().map(|s| s.0).collect();
            assert_eq!(range.clone().collect::<Vec<_>>(), ids);
        }
    }

    #[test]
    fn pod_ranges_partition_servers() {
        let cluster = FatTreeSpec {
            pods: 3,
            racks_per_pod: 2,
            servers_per_rack: 4,
            ..FatTreeSpec::paper_like()
        }
        .compile()
        .unwrap();
        let flat = FlatTopology::new(&cluster);
        assert_eq!(flat.num_pods(), 3);
        let mut covered = 0;
        for p in 0..flat.num_pods() {
            let range = flat.pod_server_range(p);
            assert_eq!(range.start, covered, "pod ranges must be contiguous");
            covered = range.end;
            for r in flat.pod_rack_range(p) {
                assert_eq!(flat.pod_of_rack(r), p);
            }
        }
        assert_eq!(covered, flat.num_servers());
    }

    #[test]
    fn link_layout_matches_link_id_index() {
        let cluster = Cluster::new(ClusterSpec {
            racks: 3,
            servers_per_rack: 2,
            oversubscription: 2.0,
            ..ClusterSpec::paper_default()
        });
        let flat = FlatTopology::new(&cluster);
        let caps = flat.link_capacities_gbps();
        assert_eq!(caps.len(), cluster.num_links());
        for (i, cap) in caps.iter().enumerate() {
            let link = LinkId::from_index(i, &cluster);
            assert_eq!(*cap, link.capacity_gbps(&cluster));
        }
    }

    #[test]
    fn topo_mode_defaults_to_flat() {
        assert_eq!(TopoMode::default(), TopoMode::Flat);
    }
}
