//! Error type for topology operations.

use crate::ServerId;
use std::error::Error;
use std::fmt;

/// Errors returned by cluster construction and the GPU allocation ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A [`ClusterSpec`](crate::ClusterSpec) field is out of range.
    InvalidSpec(String),
    /// A server index does not exist in this cluster.
    UnknownServer(ServerId),
    /// An allocation asked for more free GPUs than the server holds.
    InsufficientGpus {
        /// The server the allocation targeted.
        server: ServerId,
        /// GPUs requested by the allocation.
        requested: usize,
        /// GPUs actually free on the server.
        available: usize,
    },
    /// A release would push a server's free-GPU count above its capacity.
    ReleaseOverflow {
        /// The server the release targeted.
        server: ServerId,
        /// GPUs the caller tried to release.
        released: usize,
        /// GPUs currently allocated on the server.
        allocated: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidSpec(msg) => write!(f, "invalid cluster spec: {msg}"),
            TopologyError::UnknownServer(s) => write!(f, "unknown server {s}"),
            TopologyError::InsufficientGpus {
                server,
                requested,
                available,
            } => write!(
                f,
                "server {server} has {available} free GPUs, {requested} requested"
            ),
            TopologyError::ReleaseOverflow {
                server,
                released,
                allocated,
            } => write!(
                f,
                "server {server} has {allocated} GPUs allocated, {released} released"
            ),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_lowercase_without_trailing_punctuation() {
        let messages = [
            TopologyError::InvalidSpec("racks must be positive".into()).to_string(),
            TopologyError::UnknownServer(ServerId(9)).to_string(),
            TopologyError::InsufficientGpus {
                server: ServerId(1),
                requested: 8,
                available: 2,
            }
            .to_string(),
            TopologyError::ReleaseOverflow {
                server: ServerId(1),
                released: 8,
                allocated: 2,
            }
            .to_string(),
        ];
        for msg in messages {
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("server"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopologyError>();
    }
}
