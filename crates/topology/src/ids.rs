//! Strongly-typed identifiers for topology entities.
//!
//! Newtypes keep server, rack, and job indices from being confused with each
//! other (Rust API guideline C-NEWTYPE). All identifiers are dense indices
//! assigned by [`Cluster::new`](crate::Cluster::new) (servers, racks) or by
//! the workload layer (jobs).

use std::fmt;

/// Identifier of a GPU server (dense index into [`Cluster::servers`]).
///
/// [`Cluster::servers`]: crate::Cluster::servers
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId(pub usize);

/// Identifier of a rack and its ToR switch (dense index into
/// [`Cluster::racks`]).
///
/// [`Cluster::racks`]: crate::Cluster::racks
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RackId(pub usize);

/// Identifier of a distributed-training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u64);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl From<usize> for ServerId {
    fn from(value: usize) -> Self {
        ServerId(value)
    }
}

impl From<usize> for RackId {
    fn from(value: usize) -> Self {
        RackId(value)
    }
}

impl From<u64> for JobId {
    fn from(value: u64) -> Self {
        JobId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ServerId(3).to_string(), "s3");
        assert_eq!(RackId(7).to_string(), "r7");
        assert_eq!(JobId(42).to_string(), "j42");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ServerId(1) < ServerId(2));
        assert!(RackId(0) < RackId(9));
        assert!(JobId(5) < JobId(6));
    }

    #[test]
    fn ids_convert_from_primitive() {
        assert_eq!(ServerId::from(4), ServerId(4));
        assert_eq!(RackId::from(4), RackId(4));
        assert_eq!(JobId::from(4u64), JobId(4));
    }
}
