//! Link identifiers under the one-big-switch abstraction.

use crate::{RackId, ServerId};
use std::fmt;

/// A network link in the one-big-switch view of the cluster (§4.1, §4.2).
///
/// Following the paper's observation that aggregation traffic (up) and the
/// multicast result/ACK traffic (down) traverse the same path symmetrically,
/// links are **undirected**: there is exactly one `ServerAccess` link per
/// server and one `RackUplink` per rack.
///
/// # Example
///
/// ```
/// use netpack_topology::{LinkId, ServerId, RackId, Cluster, ClusterSpec};
///
/// let cluster = Cluster::new(ClusterSpec::paper_default());
/// let access = LinkId::ServerAccess(ServerId(0));
/// let uplink = LinkId::RackUplink(RackId(0));
/// assert_eq!(access.index(&cluster), 0);
/// assert_eq!(uplink.index(&cluster), cluster.num_servers());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkId {
    /// The access link between a server and its ToR switch.
    ServerAccess(ServerId),
    /// The uplink between a rack's ToR switch and the data-center core.
    RackUplink(RackId),
}

impl LinkId {
    /// Dense index of this link: server access links first (by server id),
    /// then rack uplinks (by rack id). Matches the layout of the residual
    /// vectors produced by the water-filling estimator.
    pub fn index(&self, cluster: &crate::Cluster) -> usize {
        match *self {
            LinkId::ServerAccess(ServerId(s)) => s,
            LinkId::RackUplink(RackId(r)) => cluster.num_servers() + r,
        }
    }

    /// Inverse of [`LinkId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for `cluster`.
    pub fn from_index(index: usize, cluster: &crate::Cluster) -> Self {
        let ns = cluster.num_servers();
        if index < ns {
            LinkId::ServerAccess(ServerId(index))
        } else {
            let r = index - ns;
            assert!(r < cluster.num_racks(), "link index {index} out of range");
            LinkId::RackUplink(RackId(r))
        }
    }

    /// Capacity of this link in Gbps under `cluster`'s spec.
    pub fn capacity_gbps(&self, cluster: &crate::Cluster) -> f64 {
        match self {
            LinkId::ServerAccess(_) => cluster.spec().server_link_gbps,
            LinkId::RackUplink(_) => cluster.spec().rack_uplink_gbps(),
        }
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkId::ServerAccess(s) => write!(f, "link:{s}"),
            LinkId::RackUplink(r) => write!(f, "uplink:{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterSpec};

    #[test]
    fn index_round_trips() {
        let cluster = Cluster::new(ClusterSpec::paper_default());
        for i in 0..cluster.num_links() {
            let link = LinkId::from_index(i, &cluster);
            assert_eq!(link.index(&cluster), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_panics_out_of_range() {
        let cluster = Cluster::new(ClusterSpec::paper_default());
        let _ = LinkId::from_index(cluster.num_links(), &cluster);
    }

    #[test]
    fn capacities_follow_spec() {
        let spec = ClusterSpec {
            oversubscription: 4.0,
            ..ClusterSpec::paper_default()
        };
        let cluster = Cluster::new(spec.clone());
        assert_eq!(
            LinkId::ServerAccess(ServerId(3)).capacity_gbps(&cluster),
            spec.server_link_gbps
        );
        assert_eq!(
            LinkId::RackUplink(RackId(2)).capacity_gbps(&cluster),
            spec.rack_uplink_gbps()
        );
    }

    #[test]
    fn display_names_are_distinct() {
        let a = LinkId::ServerAccess(ServerId(0)).to_string();
        let b = LinkId::RackUplink(RackId(0)).to_string();
        assert_ne!(a, b);
    }
}
