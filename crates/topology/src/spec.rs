//! Static cluster configuration.

use crate::TopologyError;

/// Static description of a fat-tree GPU cluster in the paper's
/// "one-big-switch" abstraction (§4.1).
///
/// All bandwidth quantities are expressed in Gbps. The Peak Aggregation
/// Throughput (PAT) of a ToR switch is the switch-memory resource converted
/// to equivalent throughput, `A = M / RTT` (§4.1); it is configured directly
/// in Gbps because that is the unit every NetPack algorithm consumes.
///
/// # Example
///
/// ```
/// use netpack_topology::ClusterSpec;
///
/// let spec = ClusterSpec::paper_default();
/// assert_eq!(spec.racks, 16);
/// // 1:1 oversubscription => a rack uplink carries the full rack bandwidth.
/// assert_eq!(spec.rack_uplink_gbps(), 16.0 * 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of racks (each rack owns one ToR switch).
    pub racks: usize,
    /// Number of GPU servers per rack.
    pub servers_per_rack: usize,
    /// Number of GPUs per server.
    pub gpus_per_server: usize,
    /// Capacity of each server's access link to its ToR switch, in Gbps.
    pub server_link_gbps: f64,
    /// Peak Aggregation Throughput of each ToR switch, in Gbps
    /// (`0.0` disables INA entirely, as in the Fig. 11 sweep).
    pub pat_gbps: f64,
    /// Oversubscription ratio of the rack uplink; `1.0` means full bisection
    /// bandwidth, `20.0` means the uplink carries 1/20 of the rack's
    /// aggregate server bandwidth (the Fig. 12 sweep).
    pub oversubscription: f64,
    /// Round-trip time between a worker and the PS, in microseconds. Used to
    /// convert between switch memory (packets) and PAT when a caller prefers
    /// to think in memory units, and by the packet-level simulator.
    pub rtt_us: f64,
    /// Racks per pod, when the cluster was lowered from a three-tier
    /// fat-tree ([`FatTreeSpec::to_cluster_spec`](crate::FatTreeSpec)).
    /// Racks are numbered pod-major, so pod `p` owns racks
    /// `p * racks_per_pod .. (p + 1) * racks_per_pod` (the last pod may be
    /// ragged when `racks` is not a multiple). `None` means the pod
    /// structure is unknown; the cluster then behaves as a single pod.
    ///
    /// Pods carry **no semantics** in the one-big-switch model — capacities
    /// are fully described by the per-rack uplink. They exist so that
    /// warehouse-scale consumers (the flat placement path) can shard
    /// rack-independent work per pod; see `DESIGN.md` §3.11.
    pub racks_per_pod: Option<usize>,
}

impl ClusterSpec {
    /// The default simulated cluster of the paper's evaluation (§6.1):
    /// 16 racks, 16 servers per rack, 4 GPUs per server, 100 Gbps access
    /// links, 1 Tbps available switch PAT, 1:1 oversubscription.
    pub fn paper_default() -> Self {
        ClusterSpec {
            racks: 16,
            servers_per_rack: 16,
            gpus_per_server: 4,
            server_link_gbps: 100.0,
            pat_gbps: 1000.0,
            oversubscription: 1.0,
            rtt_us: 50.0,
            racks_per_pod: None,
        }
    }

    /// The paper's 5-server, single-rack testbed (§6.1): five servers with
    /// two RTX 2080Ti GPUs each behind one 32x100 Gbps Tofino switch.
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            racks: 1,
            servers_per_rack: 5,
            gpus_per_server: 2,
            server_link_gbps: 100.0,
            pat_gbps: 1000.0,
            oversubscription: 1.0,
            rtt_us: 50.0,
            racks_per_pod: None,
        }
    }

    /// Number of pods: `ceil(racks / racks_per_pod)`, or 1 when no pod
    /// structure was declared.
    pub fn num_pods(&self) -> usize {
        match self.racks_per_pod {
            Some(rpp) if rpp > 0 => self.racks.div_ceil(rpp),
            _ => 1,
        }
    }

    /// Capacity of one rack uplink in Gbps:
    /// `servers_per_rack * server_link_gbps / oversubscription`.
    pub fn rack_uplink_gbps(&self) -> f64 {
        self.servers_per_rack as f64 * self.server_link_gbps / self.oversubscription
    }

    /// Total number of servers in the cluster.
    pub fn num_servers(&self) -> usize {
        self.racks * self.servers_per_rack
    }

    /// Total number of GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.num_servers() * self.gpus_per_server
    }

    /// Convert a switch-memory budget (number of packet-sized aggregators)
    /// into the equivalent PAT in Gbps, `A = M / RTT` (§4.1), for a given
    /// packet payload in bytes.
    ///
    /// # Example
    ///
    /// ```
    /// use netpack_topology::ClusterSpec;
    /// let spec = ClusterSpec::paper_default();
    /// // A window of memory equal to the 100 Gbps BDP yields PAT = 100 Gbps.
    /// let bdp_packets = (100e9 * spec.rtt_us * 1e-6 / (1024.0 * 8.0)).round() as usize;
    /// let pat = spec.memory_to_pat_gbps(bdp_packets, 1024);
    /// assert!((pat - 100.0).abs() < 0.2);
    /// ```
    pub fn memory_to_pat_gbps(&self, aggregators: usize, payload_bytes: usize) -> f64 {
        let bits = aggregators as f64 * payload_bytes as f64 * 8.0;
        bits / (self.rtt_us * 1e-6) / 1e9
    }

    /// Validate the specification.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidSpec`] if any count is zero, any
    /// bandwidth is non-positive or non-finite, or the oversubscription
    /// ratio is below 1.0.
    pub fn validate(&self) -> Result<(), TopologyError> {
        fn bad(msg: &str) -> Result<(), TopologyError> {
            Err(TopologyError::InvalidSpec(msg.to_string()))
        }
        if self.racks == 0 {
            return bad("racks must be positive");
        }
        if self.servers_per_rack == 0 {
            return bad("servers_per_rack must be positive");
        }
        if self.gpus_per_server == 0 {
            return bad("gpus_per_server must be positive");
        }
        if !(self.server_link_gbps.is_finite() && self.server_link_gbps > 0.0) {
            return bad("server_link_gbps must be positive and finite");
        }
        if !(self.pat_gbps.is_finite() && self.pat_gbps >= 0.0) {
            return bad("pat_gbps must be non-negative and finite");
        }
        if !(self.oversubscription.is_finite() && self.oversubscription >= 1.0) {
            return bad("oversubscription must be >= 1.0");
        }
        if !(self.rtt_us.is_finite() && self.rtt_us > 0.0) {
            return bad("rtt_us must be positive and finite");
        }
        if self.racks_per_pod == Some(0) {
            return bad("racks_per_pod must be positive when declared");
        }
        Ok(())
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        ClusterSpec::paper_default().validate().unwrap();
        ClusterSpec::paper_testbed().validate().unwrap();
    }

    #[test]
    fn uplink_scales_with_oversubscription() {
        let mut spec = ClusterSpec::paper_default();
        let full = spec.rack_uplink_gbps();
        spec.oversubscription = 4.0;
        assert!((spec.rack_uplink_gbps() - full / 4.0).abs() < 1e-9);
    }

    #[test]
    fn totals_multiply_out() {
        let spec = ClusterSpec::paper_default();
        assert_eq!(spec.num_servers(), 256);
        assert_eq!(spec.total_gpus(), 1024);
    }

    #[test]
    fn pod_count_rounds_up_and_defaults_to_one() {
        let mut spec = ClusterSpec::paper_default();
        assert_eq!(spec.num_pods(), 1);
        spec.racks_per_pod = Some(4);
        assert_eq!(spec.num_pods(), 4);
        spec.racks_per_pod = Some(5);
        assert_eq!(spec.num_pods(), 4, "16 racks / 5 per pod = 4 pods, ragged");
        spec.validate().unwrap();
    }

    #[test]
    fn zero_racks_per_pod_is_rejected() {
        let spec = ClusterSpec {
            racks_per_pod: Some(0),
            ..ClusterSpec::paper_default()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn zero_pat_is_valid_no_ina() {
        let spec = ClusterSpec {
            pat_gbps: 0.0,
            ..ClusterSpec::paper_default()
        };
        spec.validate().unwrap();
    }

    #[test]
    fn invalid_specs_are_rejected() {
        for spec in [
            ClusterSpec {
                racks: 0,
                ..ClusterSpec::paper_default()
            },
            ClusterSpec {
                servers_per_rack: 0,
                ..ClusterSpec::paper_default()
            },
            ClusterSpec {
                gpus_per_server: 0,
                ..ClusterSpec::paper_default()
            },
            ClusterSpec {
                server_link_gbps: 0.0,
                ..ClusterSpec::paper_default()
            },
            ClusterSpec {
                server_link_gbps: f64::NAN,
                ..ClusterSpec::paper_default()
            },
            ClusterSpec {
                pat_gbps: -1.0,
                ..ClusterSpec::paper_default()
            },
            ClusterSpec {
                oversubscription: 0.5,
                ..ClusterSpec::paper_default()
            },
            ClusterSpec {
                rtt_us: 0.0,
                ..ClusterSpec::paper_default()
            },
        ] {
            assert!(spec.validate().is_err(), "spec should be invalid: {spec:?}");
        }
    }

    #[test]
    fn memory_to_pat_round_trips_bdp() {
        let spec = ClusterSpec::paper_default();
        // PAT of exactly one 1500-byte aggregator per RTT.
        let pat = spec.memory_to_pat_gbps(1, 1500);
        let expected = 1500.0 * 8.0 / (spec.rtt_us * 1e-6) / 1e9;
        assert!((pat - expected).abs() < 1e-12);
    }
}
