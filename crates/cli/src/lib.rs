#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Library half of the NetPack CLI: argument parsing and command
//! execution, kept separate from `main.rs` so every path is unit-testable.
//!
//! Subcommands:
//!
//! * `simulate` — replay a synthetic trace under a chosen placer and print
//!   JCT / distribution efficiency (optionally CSV).
//! * `place` — place one ad-hoc batch and print the decisions plus the
//!   estimated steady-state rates.
//! * `models` — print the calibrated DNN model zoo.

mod args;
mod commands;

pub use args::{parse, usage, Command, ParseError, PlaceArgs, SimulateArgs, SynthArgs};
pub use commands::run;

/// Parse and execute a raw argument list, printing to stdout.
///
/// # Errors
///
/// Returns the user-facing message for any parse or execution failure.
pub fn run_args<S: AsRef<str>>(args: &[S]) -> Result<(), String> {
    let command = args::parse(args).map_err(|e| e.to_string())?;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    commands::run(command, &mut lock)
}
