//! Command execution.

use crate::args::{usage, Command, PlaceArgs, SimulateArgs};
use netpack_flowsim::{SimConfig, Simulation};
use netpack_metrics::TextTable;
use netpack_model::Placement;
use netpack_placement::{
    Comb, FlowBalance, GpuBalance, LeastFragmentation, NetPackPlacer, OptimusLike, Placer,
    RandomPlacer, TetrisLike,
};
use netpack_topology::{Cluster, ClusterSpec, JobId};
use netpack_waterfill::{estimate, PlacedJob};
use netpack_workload::{Job, ModelKind, TraceSpec};

/// Execute a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns an error string suitable for printing to stderr (unknown
/// placer, invalid cluster dimensions, or CSV I/O failure).
pub fn run(command: Command, out: &mut impl std::io::Write) -> Result<(), String> {
    match command {
        Command::Help => {
            writeln!(out, "{}", usage()).map_err(|e| e.to_string())?;
            Ok(())
        }
        Command::Models => {
            let mut table = TextTable::new(vec![
                "model",
                "params (M)",
                "gradient (Gbit)",
                "compute (s/iter)",
                "comm intensity (Gbps)",
            ]);
            for m in ModelKind::ALL {
                table.row(vec![
                    m.name().to_string(),
                    format!("{:.1}", m.params_millions()),
                    format!("{:.2}", m.gradient_gbits()),
                    format!("{:.3}", m.compute_time_s()),
                    format!("{:.1}", m.comm_intensity()),
                ]);
            }
            writeln!(out, "{table}").map_err(|e| e.to_string())?;
            Ok(())
        }
        Command::Simulate(args) => simulate(args, out),
        Command::Place(args) => place(args, out),
        Command::Synth(args) => {
            let trace = TraceSpec::new(args.trace, args.jobs)
                .seed(args.seed)
                .max_gpus(args.max_gpus)
                .generate();
            trace.write_csv(&args.out).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "wrote {} jobs ({} total GPUs demanded) to {}",
                trace.jobs().len(),
                trace.total_gpu_demand(),
                args.out
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        }
    }
}

fn placer_by_name(name: &str) -> Result<Box<dyn Placer>, String> {
    Ok(match name {
        "NetPack" => Box::new(NetPackPlacer::default()),
        "GB" => Box::new(GpuBalance),
        "FB" => Box::new(FlowBalance),
        "LF" => Box::new(LeastFragmentation),
        "Optimus" => Box::new(OptimusLike),
        "Tetris" => Box::new(TetrisLike),
        "Comb" => Box::new(Comb),
        "Random" => Box::new(RandomPlacer::default()),
        other => return Err(format!("unknown placer '{other}'")),
    })
}

fn cluster(
    racks: usize,
    servers_per_rack: usize,
    gpus_per_server: usize,
    pat_gbps: f64,
    oversub: f64,
) -> Result<Cluster, String> {
    Cluster::try_new(ClusterSpec {
        racks,
        servers_per_rack,
        gpus_per_server,
        pat_gbps,
        oversubscription: oversub,
        ..ClusterSpec::paper_default()
    })
    .map_err(|e| e.to_string())
}

fn simulate(args: SimulateArgs, out: &mut impl std::io::Write) -> Result<(), String> {
    let cluster = cluster(
        args.racks,
        args.servers_per_rack,
        args.gpus_per_server,
        args.pat_gbps,
        args.oversub,
    )?;
    let placer = placer_by_name(&args.placer)?;
    let trace = match &args.trace_file {
        Some(path) => netpack_workload::Trace::read_csv(path).map_err(|e| e.to_string())?,
        None => TraceSpec::new(args.trace, args.jobs)
            .seed(args.seed)
            .max_gpus((cluster.total_gpus() / 2).clamp(1, 64))
            .duration_scale(0.3)
            .generate(),
    };
    let result = Simulation::new(cluster, placer, SimConfig::default()).run(&trace);
    let mut table = TextTable::new(vec!["metric", "value"]);
    table.row(vec!["placer".into(), args.placer.clone()]);
    table.row(vec!["trace".into(), args.trace.label().into()]);
    table.row(vec!["jobs finished".into(), result.outcomes.len().to_string()]);
    table.row(vec!["jobs unfinished".into(), result.unfinished.len().to_string()]);
    if let Some(jct) = result.average_jct_s() {
        table.row(vec!["avg JCT (s)".into(), format!("{jct:.1}")]);
    }
    if let Some(de) = result.distribution_efficiency() {
        table.row(vec!["distribution efficiency".into(), format!("{de:.3}")]);
    }
    table.row(vec!["makespan (s)".into(), format!("{:.1}", result.makespan_s)]);
    writeln!(out, "{table}").map_err(|e| e.to_string())?;
    if let Some(path) = &args.csv {
        let mut csv = TextTable::new(vec!["job", "gpus", "arrival_s", "start_s", "finish_s", "jct_s"]);
        for o in &result.outcomes {
            csv.row(vec![
                o.id.to_string(),
                o.gpus.to_string(),
                format!("{:.3}", o.arrival_s),
                format!("{:.3}", o.start_s),
                format!("{:.3}", o.finish_s),
                format!("{:.3}", o.jct_s()),
            ]);
        }
        csv.write_csv(path).map_err(|e| e.to_string())?;
        writeln!(out, "per-job records written to {path}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn place(args: PlaceArgs, out: &mut impl std::io::Write) -> Result<(), String> {
    let cluster = cluster(
        args.racks,
        args.servers_per_rack,
        args.gpus_per_server,
        1000.0,
        1.0,
    )?;
    let batch: Vec<Job> = args
        .jobs
        .iter()
        .enumerate()
        .map(|(i, &(model, gpus))| Job::builder(JobId(i as u64), model, gpus).build())
        .collect();
    let mut placer = NetPackPlacer::default();
    let outcome = placer.place_batch(&cluster, &[], &batch);
    let mut table = TextTable::new(vec!["job", "model", "gpus", "workers", "ps", "ina"]);
    for (job, placement) in &outcome.placed {
        table.row(vec![
            job.id.to_string(),
            job.model.to_string(),
            job.gpus.to_string(),
            placement
                .workers()
                .iter()
                .map(|(s, w)| format!("{s}x{w}"))
                .collect::<Vec<_>>()
                .join(","),
            placement
                .ps()
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            describe_ina(placement),
        ]);
    }
    writeln!(out, "{table}").map_err(|e| e.to_string())?;
    for job in &outcome.deferred {
        writeln!(out, "deferred: {} ({} GPUs do not fit)", job.id, job.gpus)
            .map_err(|e| e.to_string())?;
    }
    // Steady-state rates for the placed set.
    let placed: Vec<PlacedJob> = outcome
        .placed
        .iter()
        .map(|(j, p)| PlacedJob::new(j.id, &cluster, p))
        .collect();
    let state = estimate(&cluster, &placed);
    for (job, _) in &outcome.placed {
        let rate = state.job_rate_gbps(job.id).unwrap_or(0.0);
        if rate.is_infinite() {
            writeln!(out, "{}: local, no network traffic", job.id).map_err(|e| e.to_string())?;
        } else {
            let comm = state
                .comm_time_s(job.id, job.gradient_gbits())
                .unwrap_or(f64::INFINITY);
            writeln!(
                out,
                "{}: {rate:.1} Gbps per worker, {comm:.3} s communication per iteration",
                job.id
            )
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn describe_ina(p: &Placement) -> String {
    if p.is_local() {
        "local".into()
    } else if p.ina_enabled() {
        "on".into()
    } else {
        "off".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    fn run_str(argv: &[&str]) -> Result<String, String> {
        let cmd = args::parse(argv).map_err(|e| e.to_string())?;
        let mut buf = Vec::new();
        run(cmd, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn models_lists_all_six() {
        let out = run_str(&["models"]).unwrap();
        for m in ModelKind::ALL {
            assert!(out.contains(m.name()), "missing {m}");
        }
    }

    #[test]
    fn simulate_small_trace_end_to_end() {
        let out = run_str(&[
            "simulate", "--jobs", "10", "--racks", "1", "--servers-per-rack", "4",
            "--placer", "GB", "--seed", "3",
        ])
        .unwrap();
        assert!(out.contains("avg JCT"));
        assert!(out.contains("jobs finished"));
    }

    #[test]
    fn simulate_writes_csv() {
        let dir = std::env::temp_dir().join("netpack-cli-test");
        let path = dir.join("jobs.csv");
        let out = run_str(&[
            "simulate", "--jobs", "5", "--racks", "1", "--servers-per-rack", "3",
            "--csv", path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("written to"));
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("job,gpus,arrival_s"));
        assert_eq!(csv.lines().count(), 6);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn place_prints_decisions_and_rates() {
        let out = run_str(&["place", "--job", "vgg16:4", "--job", "alexnet:2"]).unwrap();
        assert!(out.contains("vgg16"));
        assert!(out.contains("Gbps per worker") || out.contains("local"));
    }

    #[test]
    fn unknown_placer_is_an_error() {
        assert!(run_str(&["simulate", "--placer", "nope"]).is_err());
    }

    #[test]
    fn invalid_cluster_is_an_error() {
        assert!(run_str(&["simulate", "--racks", "0"]).is_err());
    }
}

#[cfg(test)]
mod synth_tests {
    use super::*;
    use crate::args;

    fn run_str(argv: &[&str]) -> Result<String, String> {
        let cmd = args::parse(argv).map_err(|e| e.to_string())?;
        let mut buf = Vec::new();
        run(cmd, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    #[test]
    fn synth_then_replay_round_trips() {
        let dir = std::env::temp_dir().join("netpack-cli-synth");
        let path = dir.join("trace.csv");
        let p = path.to_str().unwrap();
        let out = run_str(&["synth", "--jobs", "8", "--seed", "5", "--max-gpus", "4", "--out", p])
            .unwrap();
        assert!(out.contains("wrote 8 jobs"));
        let out = run_str(&[
            "simulate", "--trace-file", p, "--racks", "1", "--servers-per-rack", "4",
        ])
        .unwrap();
        assert!(out.contains("jobs finished            8"), "{out}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn synth_requires_out_path() {
        assert!(args::parse(&["synth", "--jobs", "5"]).is_err());
    }

    #[test]
    fn missing_trace_file_is_an_error() {
        assert!(run_str(&["simulate", "--trace-file", "/nonexistent/x.csv"]).is_err());
    }
}
