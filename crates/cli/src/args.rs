//! Hand-rolled argument parsing (no external dependencies).

use netpack_workload::{ModelKind, TraceKind};
use std::error::Error;
use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Replay a synthetic trace.
    Simulate(SimulateArgs),
    /// Place one ad-hoc batch.
    Place(PlaceArgs),
    /// Synthesize a trace to CSV.
    Synth(SynthArgs),
    /// Print the model zoo.
    Models,
    /// Print usage.
    Help,
}

/// Arguments of `simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateArgs {
    /// Placer name (`NetPack`, `GB`, `FB`, `LF`, `Optimus`, `Tetris`,
    /// `Comb`, `Random`).
    pub placer: String,
    /// Trace family.
    pub trace: TraceKind,
    /// Number of jobs.
    pub jobs: usize,
    /// Racks in the cluster.
    pub racks: usize,
    /// Servers per rack.
    pub servers_per_rack: usize,
    /// GPUs per server.
    pub gpus_per_server: usize,
    /// ToR PAT in Gbps.
    pub pat_gbps: f64,
    /// Oversubscription ratio.
    pub oversub: f64,
    /// Trace seed.
    pub seed: u64,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Replay a trace from a CSV file instead of synthesizing one
    /// (header: `id,model,gpus,iterations,arrival_s,value`).
    pub trace_file: Option<String>,
}

impl Default for SimulateArgs {
    fn default() -> Self {
        SimulateArgs {
            placer: "NetPack".into(),
            trace: TraceKind::Real,
            jobs: 100,
            racks: 4,
            servers_per_rack: 8,
            gpus_per_server: 4,
            pat_gbps: 1000.0,
            oversub: 1.0,
            seed: 1,
            csv: None,
            trace_file: None,
        }
    }
}

/// Arguments of `synth`: generate a trace and write it to CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthArgs {
    /// Trace family.
    pub trace: TraceKind,
    /// Number of jobs.
    pub jobs: usize,
    /// Trace seed.
    pub seed: u64,
    /// Clamp on GPU demand.
    pub max_gpus: usize,
    /// Output CSV path.
    pub out: String,
}

/// Arguments of `place`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceArgs {
    /// `(model, gpus)` of each job in the batch.
    pub jobs: Vec<(ModelKind, usize)>,
    /// Racks in the cluster.
    pub racks: usize,
    /// Servers per rack.
    pub servers_per_rack: usize,
    /// GPUs per server.
    pub gpus_per_server: usize,
}

impl Default for PlaceArgs {
    fn default() -> Self {
        PlaceArgs {
            jobs: Vec::new(),
            racks: 1,
            servers_per_rack: 5,
            gpus_per_server: 2,
        }
    }
}

/// A CLI parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

fn parse_model(name: &str) -> Result<ModelKind, ParseError> {
    ModelKind::ALL
        .into_iter()
        .find(|m| m.name() == name.to_ascii_lowercase())
        .ok_or_else(|| err(format!("unknown model '{name}' (try `netpack-cli models`)")))
}

fn parse_trace(name: &str) -> Result<TraceKind, ParseError> {
    match name.to_ascii_lowercase().as_str() {
        "real" => Ok(TraceKind::Real),
        "poisson" => Ok(TraceKind::Poisson),
        "normal" => Ok(TraceKind::Normal),
        other => Err(err(format!("unknown trace '{other}' (real|poisson|normal)"))),
    }
}

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    iter: &mut I,
) -> Result<&'a str, ParseError> {
    iter.next().ok_or_else(|| err(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, ParseError> {
    v.parse()
        .map_err(|_| err(format!("{flag}: cannot parse '{v}'")))
}

/// Parse a full argument list (excluding the program name).
///
/// # Errors
///
/// Returns [`ParseError`] with a user-facing message on any unknown
/// subcommand, unknown flag, missing value, or unparsable number.
pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Command, ParseError> {
    let mut iter = args.iter().map(AsRef::as_ref);
    let Some(cmd) = iter.next() else {
        return Ok(Command::Help);
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "models" => Ok(Command::Models),
        "simulate" => {
            let mut a = SimulateArgs::default();
            while let Some(flag) = iter.next() {
                match flag {
                    "--placer" => a.placer = take_value(flag, &mut iter)?.to_string(),
                    "--trace" => a.trace = parse_trace(take_value(flag, &mut iter)?)?,
                    "--jobs" => a.jobs = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--racks" => a.racks = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--servers-per-rack" => {
                        a.servers_per_rack = parse_num(flag, take_value(flag, &mut iter)?)?
                    }
                    "--gpus-per-server" => {
                        a.gpus_per_server = parse_num(flag, take_value(flag, &mut iter)?)?
                    }
                    "--pat" => a.pat_gbps = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--oversub" => a.oversub = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--seed" => a.seed = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--csv" => a.csv = Some(take_value(flag, &mut iter)?.to_string()),
                    "--trace-file" => {
                        a.trace_file = Some(take_value(flag, &mut iter)?.to_string())
                    }
                    other => return Err(err(format!("unknown flag '{other}' for simulate"))),
                }
            }
            if a.jobs == 0 {
                return Err(err("--jobs must be at least 1"));
            }
            Ok(Command::Simulate(a))
        }
        "synth" => {
            let mut a = SynthArgs {
                trace: TraceKind::Real,
                jobs: 100,
                seed: 1,
                max_gpus: 64,
                out: String::new(),
            };
            while let Some(flag) = iter.next() {
                match flag {
                    "--trace" => a.trace = parse_trace(take_value(flag, &mut iter)?)?,
                    "--jobs" => a.jobs = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--seed" => a.seed = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--max-gpus" => {
                        a.max_gpus = parse_num(flag, take_value(flag, &mut iter)?)?
                    }
                    "--out" => a.out = take_value(flag, &mut iter)?.to_string(),
                    other => return Err(err(format!("unknown flag '{other}' for synth"))),
                }
            }
            if a.out.is_empty() {
                return Err(err("synth needs --out <path>"));
            }
            if a.jobs == 0 || a.max_gpus == 0 {
                return Err(err("--jobs and --max-gpus must be at least 1"));
            }
            Ok(Command::Synth(a))
        }
        "place" => {
            let mut a = PlaceArgs::default();
            while let Some(flag) = iter.next() {
                match flag {
                    "--job" => {
                        // --job vgg16:4
                        let v = take_value(flag, &mut iter)?;
                        let (model, gpus) = v
                            .split_once(':')
                            .ok_or_else(|| err(format!("--job wants model:gpus, got '{v}'")))?;
                        a.jobs.push((parse_model(model)?, parse_num("--job", gpus)?));
                    }
                    "--racks" => a.racks = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--servers-per-rack" => {
                        a.servers_per_rack = parse_num(flag, take_value(flag, &mut iter)?)?
                    }
                    "--gpus-per-server" => {
                        a.gpus_per_server = parse_num(flag, take_value(flag, &mut iter)?)?
                    }
                    other => return Err(err(format!("unknown flag '{other}' for place"))),
                }
            }
            if a.jobs.is_empty() {
                return Err(err("place needs at least one --job model:gpus"));
            }
            Ok(Command::Place(a))
        }
        other => Err(err(format!("unknown subcommand '{other}' (try help)"))),
    }
}

/// The usage text.
pub fn usage() -> &'static str {
    "netpack-cli — NetPack (ASPLOS'24) job placement toolkit

USAGE:
  netpack-cli simulate [--placer NetPack|GB|FB|LF|Optimus|Tetris|Comb|Random]
                       [--trace real|poisson|normal] [--jobs N]
                       [--trace-file trace.csv]
                       [--racks R] [--servers-per-rack S] [--gpus-per-server G]
                       [--pat GBPS] [--oversub RATIO] [--seed K] [--csv PATH]
  netpack-cli synth    --out trace.csv [--trace real|poisson|normal]
                       [--jobs N] [--seed K] [--max-gpus G]
  netpack-cli place    --job model:gpus [--job model:gpus ...]
                       [--racks R] [--servers-per-rack S] [--gpus-per-server G]
  netpack-cli models
  netpack-cli help
"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(parse::<&str>(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn simulate_parses_all_flags() {
        let cmd = parse(&[
            "simulate", "--placer", "GB", "--trace", "poisson", "--jobs", "7", "--racks",
            "2", "--servers-per-rack", "3", "--gpus-per-server", "8", "--pat", "500",
            "--oversub", "4", "--seed", "9", "--csv", "/tmp/x.csv",
        ])
        .unwrap();
        let Command::Simulate(a) = cmd else {
            panic!("expected simulate")
        };
        assert_eq!(a.placer, "GB");
        assert_eq!(a.trace, TraceKind::Poisson);
        assert_eq!(a.jobs, 7);
        assert_eq!(a.racks, 2);
        assert_eq!(a.servers_per_rack, 3);
        assert_eq!(a.gpus_per_server, 8);
        assert_eq!(a.pat_gbps, 500.0);
        assert_eq!(a.oversub, 4.0);
        assert_eq!(a.seed, 9);
        assert_eq!(a.csv.as_deref(), Some("/tmp/x.csv"));
    }

    #[test]
    fn place_parses_job_specs() {
        let cmd = parse(&["place", "--job", "vgg16:4", "--job", "resnet50:2"]).unwrap();
        let Command::Place(a) = cmd else {
            panic!("expected place")
        };
        assert_eq!(a.jobs, vec![(ModelKind::Vgg16, 4), (ModelKind::ResNet50, 2)]);
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(parse(&["simulate", "--jobs"]).is_err());
        assert!(parse(&["simulate", "--jobs", "zero"]).is_err());
        assert!(parse(&["simulate", "--wat"]).is_err());
        assert!(parse(&["place"]).is_err());
        assert!(parse(&["place", "--job", "vgg16x4"]).is_err());
        assert!(parse(&["place", "--job", "nomodel:4"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
    }

    #[test]
    fn zero_jobs_rejected() {
        assert!(parse(&["simulate", "--jobs", "0"]).is_err());
    }

    #[test]
    fn models_and_case_insensitive_names() {
        assert_eq!(parse(&["models"]).unwrap(), Command::Models);
        assert_eq!(parse_model("VGG16").unwrap(), ModelKind::Vgg16);
        assert_eq!(parse_trace("REAL").unwrap(), TraceKind::Real);
    }
}
