//! `netpack-cli` — command-line front end for the NetPack toolkit.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match netpack_cli::run_args(&args) {
        Ok(()) => return,
        Err(msg) => msg,
    };
    eprintln!("error: {command}");
    std::process::exit(2);
}
