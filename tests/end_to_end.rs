//! End-to-end integration tests spanning every crate: trace → manager →
//! placer → water-filling → flow simulation → metrics.

use netpack::prelude::*;

fn testbed() -> ClusterSpec {
    ClusterSpec {
        pat_gbps: 200.0,
        ..ClusterSpec::paper_testbed()
    }
}

fn all_placers() -> Vec<Box<dyn Placer>> {
    vec![
        Box::new(NetPackPlacer::default()),
        Box::new(GpuBalance),
        Box::new(FlowBalance),
        Box::new(LeastFragmentation),
        Box::new(OptimusLike),
        Box::new(TetrisLike),
        Box::new(Comb),
        Box::new(RandomPlacer::new(3)),
    ]
}

#[test]
fn every_placer_replays_a_real_trace_to_completion() {
    let trace = TraceSpec::new(TraceKind::Real, 40)
        .seed(11)
        .duration_scale(0.05)
        .max_gpus(8)
        .generate();
    for placer in all_placers() {
        let name = placer.name();
        let result = Simulation::new(
            Cluster::new(testbed()),
            placer,
            SimConfig::default(),
        )
        .run(&trace);
        assert_eq!(result.outcomes.len(), 40, "{name}: all jobs must finish");
        assert!(result.unfinished.is_empty(), "{name}");
        let de = result.distribution_efficiency().unwrap();
        assert!(de > 0.0 && de <= 1.0 + 1e-9, "{name}: DE {de}");
        // JCT >= the ideal communication-free runtime for every job.
        for o in &result.outcomes {
            assert!(
                o.jct_s() + 1e-6 >= o.serial_time_s / o.gpus as f64,
                "{name}: job {} finished faster than physics allows",
                o.id
            );
        }
    }
}

#[test]
fn all_trace_kinds_replay_on_the_simulator_cluster() {
    let spec = ClusterSpec {
        racks: 4,
        servers_per_rack: 4,
        ..ClusterSpec::paper_default()
    };
    for kind in TraceKind::ALL {
        let trace = TraceSpec::new(kind, 30)
            .seed(5)
            .duration_scale(0.05)
            .max_gpus(spec.total_gpus() / 2)
            .generate();
        let result = Simulation::new(
            Cluster::new(spec.clone()),
            Box::new(NetPackPlacer::default()),
            SimConfig::default(),
        )
        .run(&trace);
        assert_eq!(result.outcomes.len(), 30, "{kind}");
    }
}

#[test]
fn netpack_beats_random_placement_under_load() {
    let spec = ClusterSpec {
        racks: 4,
        servers_per_rack: 8,
        ..ClusterSpec::paper_default()
    };
    let mut netpack_total = 0.0;
    let mut random_total = 0.0;
    for seed in 0..3u64 {
        let trace = TraceSpec::new(TraceKind::Real, 80)
            .seed(100 + seed)
            .mean_interarrival_s(5.0)
            .duration_scale(0.2)
            .max_gpus(32)
            .generate();
        let run = |placer: Box<dyn Placer>| {
            Simulation::new(Cluster::new(spec.clone()), placer, SimConfig::default())
                .run(&trace)
                .average_jct_s()
                .unwrap()
        };
        netpack_total += run(Box::<NetPackPlacer>::default());
        random_total += run(Box::new(RandomPlacer::new(seed)));
    }
    assert!(
        netpack_total < random_total,
        "NetPack {netpack_total} should beat Random {random_total}"
    );
}

#[test]
fn manager_ledger_is_conserved_across_a_full_replay() {
    let spec = testbed();
    let trace = TraceSpec::new(TraceKind::Poisson, 50)
        .seed(9)
        .duration_scale(0.03)
        .max_gpus(spec.total_gpus())
        .generate();
    let result = Simulation::new(
        Cluster::new(spec.clone()),
        Box::new(NetPackPlacer::default()),
        SimConfig::default(),
    )
    .run(&trace);
    // Every job finished, so at the end every GPU must have been released
    // (the simulator would have panicked otherwise); verify the outcomes
    // cover the whole trace exactly once.
    let mut ids: Vec<u64> = result.outcomes.iter().map(|o| o.id.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 50);
}

#[test]
fn waterfill_estimate_matches_placed_batch() {
    // Place a batch with NetPack, then check the estimator is consistent
    // with what the placement validation believes.
    let cluster = Cluster::new(testbed());
    // 2+3+2+3 = 10 GPUs: exactly fills the 5x2 testbed.
    let batch: Vec<Job> = (0..4)
        .map(|i| Job::builder(JobId(i), ModelKind::Vgg16, 2 + (i as usize % 2)).build())
        .collect();
    let mut placer = NetPackPlacer::default();
    let outcome = placer.place_batch(&cluster, &[], &batch);
    assert_eq!(outcome.placed.len(), 4);
    let placed: Vec<PlacedJob> = outcome
        .placed
        .iter()
        .map(|(j, p)| PlacedJob::new(j.id, &cluster, p))
        .collect();
    let state = estimate(&cluster, &placed);
    for (job, placement) in &outcome.placed {
        let rate = state.job_rate_gbps(job.id).unwrap();
        if placement.is_local() {
            assert!(rate.is_infinite());
        } else {
            assert!(rate.is_finite() && rate > 0.0, "{}: rate {rate}", job.id);
        }
    }
}

#[test]
fn packet_sim_respects_the_pat_law_from_cluster_spec() {
    // ClusterSpec::memory_to_pat_gbps and the packet simulator must agree
    // on the PAT abstraction.
    let spec = ClusterSpec::paper_default();
    let config = netpack::packetsim::SwitchConfig {
        pool_slots: 256,
        ..netpack::packetsim::SwitchConfig::default()
    };
    let pat_from_spec = spec.memory_to_pat_gbps(256, config.payload_bytes);
    assert!((config.pat_gbps() - pat_from_spec).abs() < 1e-9);
}

#[test]
fn exact_solver_never_loses_to_netpack_on_tiny_instances() {
    use netpack::placement::{batch_comm_time_s, ExactPlacer};
    let cluster = Cluster::new(ClusterSpec {
        racks: 1,
        servers_per_rack: 3,
        gpus_per_server: 2,
        pat_gbps: 50.0,
        ..ClusterSpec::paper_default()
    });
    for sizes in [vec![3usize], vec![2, 3], vec![2, 2]] {
        let batch: Vec<Job> = sizes
            .iter()
            .enumerate()
            .map(|(i, &g)| Job::builder(JobId(i as u64), ModelKind::Vgg16, g).build())
            .collect();
        let exact_obj = {
            let mut p = ExactPlacer::default();
            let out = p.place_batch(&cluster, &[], &batch);
            batch_comm_time_s(&cluster, &[], &out.placed)
        };
        let dp_obj = {
            let mut p = NetPackPlacer::default();
            let out = p.place_batch(&cluster, &[], &batch);
            batch_comm_time_s(&cluster, &[], &out.placed)
        };
        assert!(
            exact_obj <= dp_obj + 1e-9,
            "exact {exact_obj} must lower-bound dp {dp_obj} for {sizes:?}"
        );
    }
}
