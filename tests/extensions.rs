//! Integration tests for the extension features: gradient sharding and
//! the synchronous-INA cluster mode, exercised through the public facade.

use netpack::flowsim::InaMode;
use netpack::placement::{InaPolicy, NetPackConfig};
use netpack::prelude::*;

fn cluster() -> ClusterSpec {
    ClusterSpec {
        racks: 2,
        servers_per_rack: 6,
        gpus_per_server: 4,
        pat_gbps: 100.0,
        ..ClusterSpec::paper_default()
    }
}

#[test]
fn sharded_placements_replay_end_to_end() {
    let trace = TraceSpec::new(TraceKind::Real, 30)
        .seed(13)
        .duration_scale(0.05)
        .max_gpus(16)
        .generate();
    let placer = NetPackPlacer::new(NetPackConfig {
        pses_per_job: 2,
        ..NetPackConfig::default()
    });
    let result = Simulation::new(
        Cluster::new(cluster()),
        Box::new(placer),
        SimConfig::default(),
    )
    .run(&trace);
    assert_eq!(result.outcomes.len(), 30);
    assert!(result.unfinished.is_empty());
}

#[test]
fn sharding_beats_single_ps_when_ina_is_off() {
    let spec = ClusterSpec {
        pat_gbps: 0.0,
        ..cluster()
    };
    let trace = TraceSpec::new(TraceKind::Normal, 40)
        .seed(21)
        .mean_interarrival_s(5.0)
        .duration_scale(0.1)
        .max_gpus(24)
        .generate();
    let run = |k: usize| {
        let placer = NetPackPlacer::new(NetPackConfig {
            pses_per_job: k,
            ina_policy: InaPolicy::AlwaysOff,
            ..NetPackConfig::default()
        });
        Simulation::new(Cluster::new(spec.clone()), Box::new(placer), SimConfig::default())
            .run(&trace)
            .average_jct_s()
            .expect("jobs finished")
    };
    let one = run(1);
    let two = run(2);
    assert!(
        two <= one * 1.02,
        "2-PS sharding should not lose with INA off: {one} vs {two}"
    );
}

#[test]
fn synchronous_mode_replays_the_full_roster_workload() {
    let trace = TraceSpec::new(TraceKind::Poisson, 25)
        .seed(3)
        .duration_scale(0.05)
        .max_gpus(16)
        .generate();
    let config = SimConfig {
        ina_mode: InaMode::Synchronous,
        ..SimConfig::default()
    };
    for placer in [
        Box::new(NetPackPlacer::default()) as Box<dyn Placer>,
        Box::new(GpuBalance),
    ] {
        let name = placer.name();
        let result = Simulation::new(Cluster::new(cluster()), placer, config).run(&trace);
        assert_eq!(result.outcomes.len(), 25, "{name}");
    }
}

#[test]
fn estimate_synchronous_is_exposed_through_the_facade() {
    use netpack::waterfill::estimate_synchronous;
    let c = Cluster::new(cluster());
    let placement = Placement::new(vec![(ServerId(0), 2), (ServerId(1), 2)], Some(ServerId(2)));
    let placed = vec![PlacedJob::new(JobId(0), &c, &placement)];
    let stat = estimate(&c, &placed);
    let sync = estimate_synchronous(&c, &placed);
    let rs = stat.job_rate_gbps(JobId(0)).unwrap();
    let ry = sync.job_rate_gbps(JobId(0)).unwrap();
    assert!(rs.is_finite() && ry.is_finite());
    assert!(rs >= ry - 1e-6, "statistical {rs} >= synchronous {ry}");
}

#[test]
fn trace_csv_round_trips_through_the_simulator() {
    let dir = std::env::temp_dir().join("netpack-ext-test");
    let path = dir.join("trace.csv");
    let trace = TraceSpec::new(TraceKind::Real, 15)
        .seed(6)
        .duration_scale(0.03)
        .max_gpus(8)
        .generate();
    trace.write_csv(&path).unwrap();
    let loaded = Trace::read_csv(&path).unwrap();
    let run = |t: &Trace| {
        Simulation::new(
            Cluster::new(cluster()),
            Box::<NetPackPlacer>::default(),
            SimConfig::default(),
        )
        .run(t)
    };
    assert_eq!(run(&trace), run(&loaded));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn fat_tree_compiles_and_replays_end_to_end() {
    use netpack::topology::FatTreeSpec;
    let ft = FatTreeSpec {
        pods: 2,
        racks_per_pod: 2,
        servers_per_rack: 4,
        ..FatTreeSpec::paper_like()
    };
    assert!(ft.simultaneous_saturation_is_feasible());
    let cluster = ft.compile().expect("valid fat-tree");
    let trace = TraceSpec::new(TraceKind::Real, 20)
        .seed(17)
        .duration_scale(0.05)
        .max_gpus(16)
        .generate();
    let result = Simulation::new(
        cluster,
        Box::<NetPackPlacer>::default(),
        SimConfig::default(),
    )
    .run(&trace);
    assert_eq!(result.outcomes.len(), 20);
}
