//! Failure-injection integration tests: degenerate clusters, hostile
//! traces, and misbehaving placers must fail loudly or degrade gracefully,
//! never corrupt state.

use netpack::placement::BatchOutcome;
use netpack::prelude::*;

#[test]
fn zero_pat_cluster_still_schedules_everything() {
    let spec = ClusterSpec {
        racks: 2,
        servers_per_rack: 4,
        pat_gbps: 0.0,
        ..ClusterSpec::paper_default()
    };
    let trace = TraceSpec::new(TraceKind::Real, 30)
        .seed(2)
        .duration_scale(0.05)
        .max_gpus(16)
        .generate();
    let result = Simulation::new(
        Cluster::new(spec),
        Box::new(NetPackPlacer::default()),
        SimConfig::default(),
    )
    .run(&trace);
    assert_eq!(result.outcomes.len(), 30);
}

#[test]
fn extreme_oversubscription_still_schedules_everything() {
    let spec = ClusterSpec {
        racks: 4,
        servers_per_rack: 4,
        oversubscription: 20.0,
        ..ClusterSpec::paper_default()
    };
    let trace = TraceSpec::new(TraceKind::Normal, 25)
        .seed(4)
        .duration_scale(0.05)
        .max_gpus(24)
        .generate();
    let result = Simulation::new(
        Cluster::new(spec),
        Box::new(NetPackPlacer::default()),
        SimConfig::default(),
    )
    .run(&trace);
    assert_eq!(result.outcomes.len(), 25);
    assert!(result.unfinished.is_empty());
}

#[test]
fn empty_trace_is_a_clean_noop() {
    let result = Simulation::new(
        Cluster::new(ClusterSpec::paper_testbed()),
        Box::new(NetPackPlacer::default()),
        SimConfig::default(),
    )
    .run(&Trace::default());
    assert!(result.outcomes.is_empty());
    assert!(result.unfinished.is_empty());
    assert_eq!(result.makespan_s, 0.0);
}

#[test]
fn single_server_cluster_serializes_all_jobs() {
    let spec = ClusterSpec {
        racks: 1,
        servers_per_rack: 1,
        gpus_per_server: 2,
        ..ClusterSpec::paper_default()
    };
    let jobs: Vec<Job> = (0..5)
        .map(|i| {
            Job::builder(JobId(i), ModelKind::AlexNet, 2)
                .iterations(10)
                .build()
        })
        .collect();
    let result = Simulation::new(
        Cluster::new(spec),
        Box::new(NetPackPlacer::default()),
        SimConfig::default(),
    )
    .run(&Trace::from_jobs(jobs));
    assert_eq!(result.outcomes.len(), 5);
    // Strictly one at a time: no two run intervals overlap.
    let mut intervals: Vec<(f64, f64)> = result
        .outcomes
        .iter()
        .map(|o| (o.start_s, o.finish_s))
        .collect();
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    for w in intervals.windows(2) {
        assert!(w[1].0 >= w[0].1 - 1e-6, "overlap: {w:?}");
    }
}

#[test]
fn sim_time_cap_reports_unfinished_jobs() {
    let job = Job::builder(JobId(0), ModelKind::ResNet101, 2)
        .iterations(1_000_000)
        .build();
    let config = SimConfig {
        max_sim_time_s: 100.0,
        ..SimConfig::default()
    };
    let result = Simulation::new(
        Cluster::new(ClusterSpec::paper_testbed()),
        Box::new(NetPackPlacer::default()),
        config,
    )
    .run(&Trace::from_jobs(vec![job]));
    assert!(result.outcomes.is_empty());
    assert_eq!(result.unfinished, vec![JobId(0)]);
    assert!(result.makespan_s <= 100.0 + 1e-6);
}

/// A deliberately broken placer that over-commits GPUs; the job manager
/// must reject it loudly rather than corrupting the ledger.
struct EvilPlacer;

impl Placer for EvilPlacer {
    fn name(&self) -> &'static str {
        "Evil"
    }

    fn place_batch(
        &mut self,
        _cluster: &Cluster,
        _running: &[netpack::placement::RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        BatchOutcome {
            placed: batch
                .iter()
                .map(|j| {
                    // Claims 100 workers on server 0 regardless of capacity.
                    (j.clone(), Placement::new(vec![(ServerId(0), 100)], None))
                })
                .collect(),
            deferred: Vec::new(),
        }
    }
}

#[test]
#[should_panic(expected = "invalid placement")]
fn manager_panics_on_over_committing_placer() {
    use netpack::manager::{JobManager, ManagerConfig};
    let mut m = JobManager::new(
        Cluster::new(ClusterSpec::paper_testbed()),
        Box::new(EvilPlacer),
        ManagerConfig::default(),
    );
    m.submit(Job::builder(JobId(0), ModelKind::AlexNet, 1).build());
    let _ = m.run_epoch();
}

#[test]
fn exact_placer_with_ina_enumeration_is_no_worse() {
    use netpack::placement::{batch_comm_time_s, ExactPlacer};
    let cluster = Cluster::new(ClusterSpec {
        racks: 1,
        servers_per_rack: 3,
        gpus_per_server: 2,
        pat_gbps: 20.0,
        ..ClusterSpec::paper_default()
    });
    let batch = vec![Job::builder(JobId(0), ModelKind::Vgg16, 3).build()];
    let plain = {
        let mut p = ExactPlacer::default();
        let out = p.place_batch(&cluster, &[], &batch);
        batch_comm_time_s(&cluster, &[], &out.placed)
    };
    let with_ina = {
        let mut p = ExactPlacer::default().enumerate_ina(true);
        let out = p.place_batch(&cluster, &[], &batch);
        batch_comm_time_s(&cluster, &[], &out.placed)
    };
    assert!(with_ina <= plain + 1e-9);
}
