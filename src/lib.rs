#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! NetPack: training-job placement for GPU clusters with statistical
//! in-network aggregation.
//!
//! This crate is the facade of a full Rust reproduction of *"Training Job
//! Placement in Clusters with Statistical In-Network Aggregation"*
//! (ASPLOS 2024). It re-exports every subsystem:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`topology`] | `netpack-topology` | clusters, racks, servers, links, PAT |
//! | [`workload`] | `netpack-workload` | DNN model zoo, jobs, trace synthesis |
//! | [`model`] | `netpack-model` | the Table-1 aggregation model and job hierarchies |
//! | [`waterfill`] | `netpack-waterfill` | Algorithm 1 steady-state estimation |
//! | [`placement`] | `netpack-placement` | Algorithm 2 (NetPack) + six baselines + exact solver |
//! | [`manager`] | `netpack-core` | the periodic batching job manager |
//! | [`flowsim`] | `netpack-flowsim` | flow-level trace-replay simulator |
//! | [`packetsim`] | `netpack-packetsim` | packet-level statistical-INA switch simulator |
//! | [`metrics`] | `netpack-metrics` | JCT, distribution efficiency, stats |
//!
//! # Quickstart
//!
//! ```
//! use netpack::prelude::*;
//!
//! // The paper's default simulated cluster and a small production-like
//! // trace, scheduled by NetPack.
//! let cluster = Cluster::new(ClusterSpec::paper_testbed());
//! let trace = TraceSpec::new(TraceKind::Real, 10)
//!     .seed(1)
//!     .duration_scale(0.02)
//!     .max_gpus(8)
//!     .generate();
//! let result = Simulation::new(
//!     cluster,
//!     Box::new(NetPackPlacer::default()),
//!     SimConfig::default(),
//! )
//! .run(&trace);
//! println!("average JCT: {:.1} s", result.average_jct_s().unwrap());
//! ```

pub use netpack_core as manager;
pub use netpack_flowsim as flowsim;
pub use netpack_metrics as metrics;
pub use netpack_model as model;
pub use netpack_packetsim as packetsim;
pub use netpack_placement as placement;
pub use netpack_topology as topology;
pub use netpack_waterfill as waterfill;
pub use netpack_workload as workload;

/// The most frequently used items in one import.
pub mod prelude {
    pub use netpack_core::{JobManager, ManagerConfig};
    pub use netpack_flowsim::{SimConfig, SimResult, Simulation};
    pub use netpack_metrics::{average_jct_s, distribution_efficiency, Summary, TextTable};
    pub use netpack_model::{JobHierarchy, Placement};
    pub use netpack_packetsim::{MemoryMode, PacketJobSpec, PacketSim, SwitchConfig};
    pub use netpack_placement::{
        Comb, FlowBalance, GpuBalance, LeastFragmentation, NetPackConfig, NetPackPlacer,
        OptimusLike, Placer, RandomPlacer, TetrisLike,
    };
    pub use netpack_topology::{Cluster, ClusterSpec, JobId, LinkId, RackId, ServerId};
    pub use netpack_waterfill::{estimate, PlacedJob, SteadyState};
    pub use netpack_workload::{Job, ModelKind, Trace, TraceKind, TraceSpec};
}
